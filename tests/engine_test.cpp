// Integration tests of the actor engine: exact item accounting on finite
// streams, fission and fusion execution semantics (Alg. 4), selectivity
// realization, backpressure, and measured-vs-predicted throughput.
#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "core/error.hpp"
#include "core/steady_state.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using namespace std::chrono_literals;
using std::chrono::duration;

/// Emits `count` tuples as fast as possible (ids 0..count-1).
class BurstSource final : public SourceLogic {
 public:
  explicit BurstSource(std::int64_t count) : count_(count) {}
  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    out = Tuple{};
    out.id = next_id_++;
    out.key = out.id;
    return true;
  }

 private:
  std::int64_t count_;
  std::int64_t next_id_ = 0;
};

/// Forwards every item unchanged, optionally recording what it saw.
class PassThrough final : public OperatorLogic {
 public:
  explicit PassThrough(std::atomic<std::int64_t>* seen = nullptr) : seen_(seen) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (seen_ != nullptr) seen_->fetch_add(1);
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<PassThrough>(seen_);
  }

 private:
  std::atomic<std::int64_t>* seen_;
};

/// Adds `delta` to f[0]; used to verify fused sequential composition.
class AddConstant final : public OperatorLogic {
 public:
  explicit AddConstant(double delta) : delta_(delta) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[0] += delta_;
    out.emit(t);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<AddConstant>(delta_);
  }

 private:
  double delta_;
};

/// Terminal logic recording the f[0] sum and count of everything received.
class RecordingSink final : public OperatorLogic {
 public:
  RecordingSink(std::atomic<std::int64_t>* count, std::atomic<std::int64_t>* sum_milli)
      : count_(count), sum_milli_(sum_milli) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    count_->fetch_add(1);
    sum_milli_->fetch_add(static_cast<std::int64_t>(item.f[0] * 1000.0 + 0.5));
    out.emit(item);  // sinks' emissions are absorbed and counted as departures
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<RecordingSink>(count_, sum_milli_);
  }

 private:
  std::atomic<std::int64_t>* count_;
  std::atomic<std::int64_t>* sum_milli_;
};

Topology pipeline(std::initializer_list<const char*> names) {
  Topology::Builder b;
  OpIndex prev = kInvalidOp;
  for (const char* name : names) {
    OpIndex cur = b.add_operator(name, 1e-6);
    if (prev != kInvalidOp) b.add_edge(prev, cur);
    prev = cur;
  }
  return b.build();
}

EngineConfig fast_config() {
  EngineConfig cfg;
  cfg.mailbox_capacity = 64;
  cfg.send_timeout = duration<double>(5.0);
  return cfg;
}

TEST(Engine, FiniteStreamFlowsExactly) {
  Topology t = pipeline({"src", "a", "b", "sink"});
  static constexpr std::int64_t kItems = 2000;
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(kItems);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) { return std::make_unique<PassThrough>(); };

  Engine engine(t, Deployment{}, factory, fast_config());
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.dropped, 0u);
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(stats.ops[i].processed, static_cast<std::uint64_t>(kItems)) << "op " << i;
    EXPECT_EQ(stats.ops[i].emitted, static_cast<std::uint64_t>(kItems)) << "op " << i;
  }
}

TEST(Engine, ProbabilisticRoutingSplitsTraffic) {
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("left", 1e-6);
  b.add_operator("right", 1e-6);
  b.add_edge(0, 1, 0.25);
  b.add_edge(0, 2, 0.75);
  Topology t = b.build();

  static constexpr std::int64_t kItems = 20000;
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(kItems);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) { return std::make_unique<PassThrough>(); };

  Engine engine(t, Deployment{}, factory, fast_config());
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.ops[1].processed + stats.ops[2].processed,
            static_cast<std::uint64_t>(kItems));
  EXPECT_NEAR(static_cast<double>(stats.ops[1].processed), 0.25 * kItems, 0.03 * kItems);
  EXPECT_NEAR(static_cast<double>(stats.ops[2].processed), 0.75 * kItems, 0.03 * kItems);
}

TEST(Engine, FissionProcessesEverythingOnce) {
  Topology t = pipeline({"src", "work", "sink"});
  static constexpr std::int64_t kItems = 5000;
  std::atomic<std::int64_t> seen{0};
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(kItems);
  };
  factory.logic = [&seen](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<PassThrough>(&seen);
    return std::make_unique<PassThrough>();
  };

  Deployment d;
  d.replication.replicas = {1, 4, 1};
  Engine engine(t, d, factory, fast_config());
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(seen.load(), kItems);  // all replicas together see each item once
  EXPECT_EQ(stats.ops[1].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[2].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Engine, PartitionedFissionRoutesByKey) {
  // Two replicas, keys 0..3 with explicit partition {0,1}->r0, {2,3}->r1.
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  OperatorSpec agg;
  agg.name = "agg";
  agg.service_time = 1e-6;
  agg.state = StateKind::kPartitionedStateful;
  agg.keys = KeyDistribution::uniform(4);
  b.add_operator(std::move(agg));
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();

  static constexpr std::int64_t kItems = 8000;
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(kItems);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) { return std::make_unique<PassThrough>(); };

  Deployment d;
  d.replication.replicas = {1, 2, 1};
  d.replication.max_share = {0.0, 0.5, 0.0};
  d.partitions.resize(3);
  d.partitions[1].replica_of_key = {0, 0, 1, 1};
  d.partitions[1].replicas = 2;
  d.partitions[1].max_share = 0.5;

  EngineConfig cfg = fast_config();
  Engine engine(t, d, factory, cfg);
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.ops[1].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[2].processed, static_cast<std::uint64_t>(kItems));
}

TEST(Engine, FusionComposesMemberLogicsSequentially) {
  // src -> add(+1) -> add(+10) -> sink, with the two adders fused: every
  // tuple must still gain exactly +11 (semantic equivalence, §2).
  Topology t = pipeline({"src", "add1", "add10", "sink"});
  static constexpr std::int64_t kItems = 3000;
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum_milli{0};
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(kItems);
  };
  factory.logic = [&](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<AddConstant>(1.0);
    if (op == 2) return std::make_unique<AddConstant>(10.0);
    return std::make_unique<RecordingSink>(&count, &sum_milli);
  };

  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 2}, "adders"});
  Engine engine(t, d, factory, fast_config());
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(count.load(), kItems);
  EXPECT_EQ(sum_milli.load(), kItems * 11000);
  // Member counters remain per logical operator inside the meta actor.
  EXPECT_EQ(stats.ops[1].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[2].processed, static_cast<std::uint64_t>(kItems));
}

TEST(Engine, SyntheticSelectivityShapesRates) {
  // window(input selectivity 10) -> expander(output selectivity 2):
  // sink receives ~ items/10*2.
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("window", 1e-6, StateKind::kStateful, Selectivity{10.0, 1.0});
  b.add_operator("expand", 1e-6, StateKind::kStateless, Selectivity{1.0, 2.0});
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Topology t = b.build();

  static constexpr std::int64_t kItems = 10000;
  AppFactory factory = synthetic_factory(/*time_scale=*/0.0, /*max_items=*/kItems);
  Engine engine(t, Deployment{}, factory, fast_config());
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_NEAR(static_cast<double>(stats.ops[1].emitted), kItems / 10.0, 2.0);
  EXPECT_NEAR(static_cast<double>(stats.ops[3].processed), kItems / 10.0 * 2.0, 8.0);
}

TEST(Engine, BackpressureThrottlesSourceToBottleneckRate) {
  // src 2ms, slow 8ms: the model predicts 125 tuples/s; the measured rate
  // must match within ~12% (timing noise on shared CI hardware).
  Topology::Builder b;
  b.add_operator("src", 2e-3);
  b.add_operator("slow", 8e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();

  Engine engine(t, Deployment{}, synthetic_factory(), fast_config());
  RunStats stats = engine.run_for(duration<double>(2.0));
  const double predicted = steady_state(t).throughput();
  EXPECT_NEAR(stats.source_rate, predicted, 0.12 * predicted);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Engine, FissionRestoresIdealThroughputUnderLoad) {
  // slow op replicated 4x should let the source run at full pace again.
  Topology::Builder b;
  b.add_operator("src", 2e-3);
  b.add_operator("slow", 6e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();

  Deployment d;
  d.replication.replicas = {1, 4, 1};
  Engine engine(t, d, synthetic_factory(), fast_config());
  RunStats stats = engine.run_for(duration<double>(2.0));
  const double predicted = steady_state(t, d.replication).throughput();  // 500/s
  EXPECT_NEAR(stats.source_rate, predicted, 0.12 * predicted);
}

TEST(Engine, RunForStopsAnInfiniteSource) {
  Topology t = pipeline({"src", "sink"});
  Engine engine(t, Deployment{}, synthetic_factory(/*time_scale=*/1.0), fast_config());
  // src service time 1us -> very fast; just verify the run terminates and
  // measures something sensible.
  RunStats stats = engine.run_for(duration<double>(0.4));
  EXPECT_GT(stats.ops[0].processed, 0u);
  EXPECT_GE(stats.total_seconds, 0.4);
}

TEST(Engine, RunUntilCompleteTimesOutOnInfiniteSource) {
  Topology t = pipeline({"src", "sink"});
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec& spec) {
    return std::make_unique<SyntheticSource>(spec, 1, 1.0, /*max_items=*/-1);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) { return std::make_unique<PassThrough>(); };
  Topology::Builder b;  // source with 1ms pace so the watchdog matters
  b.add_operator("src", 1e-3);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  Engine engine(b.build(), Deployment{}, factory, fast_config());
  const auto start = std::chrono::steady_clock::now();
  RunStats stats = engine.run_until_complete(duration<double>(0.3));
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 5.0);
  EXPECT_GT(stats.ops[0].processed, 0u);
}

TEST(Engine, EngineRunsOnlyOnce) {
  Topology t = pipeline({"src", "sink"});
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) { return std::make_unique<BurstSource>(10); };
  factory.logic = [](OpIndex, const OperatorSpec&) { return std::make_unique<PassThrough>(); };
  Engine engine(t, Deployment{}, factory, fast_config());
  (void)engine.run_until_complete(duration<double>(10.0));
  EXPECT_THROW((void)engine.run_until_complete(duration<double>(1.0)), ss::Error);
}

}  // namespace
}  // namespace ss::runtime
