// Tests of the path machinery behind Theorem 3.2 / Proposition 3.5:
// arrival coefficients, explicit path enumeration, and their agreement.
#include "core/paths.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace ss {
namespace {

Topology diamond_with_chord() {
  // src -> a (0.4), src -> b (0.6), a -> b (0.5), a -> sink (0.5), b -> sink
  Topology::Builder builder;
  builder.add_operator("src", 1e-3);
  builder.add_operator("a", 1e-3);
  builder.add_operator("b", 1e-3);
  builder.add_operator("sink", 1e-3);
  builder.add_edge(0, 1, 0.4);
  builder.add_edge(0, 2, 0.6);
  builder.add_edge(1, 2, 0.5);
  builder.add_edge(1, 3, 0.5);
  builder.add_edge(2, 3, 1.0);
  return builder.build();
}

TEST(ArrivalCoefficients, MatchEquationOne) {
  Topology t = diamond_with_chord();
  const auto coeff = arrival_coefficients(t);
  EXPECT_DOUBLE_EQ(coeff[0], 1.0);
  EXPECT_DOUBLE_EQ(coeff[1], 0.4);
  EXPECT_DOUBLE_EQ(coeff[2], 0.6 + 0.4 * 0.5);  // two ways to reach b
  EXPECT_DOUBLE_EQ(coeff[3], 1.0);              // everything drains to the sink
}

TEST(ArrivalCoefficients, SinkCoefficientsSumToOne) {
  // Proposition 3.5's combinatorial core: total path probability from the
  // source to the sinks is 1 in any flow graph.
  Topology t = diamond_with_chord();
  const auto coeff = arrival_coefficients(t);
  double total = 0.0;
  for (OpIndex s : t.sinks()) total += coeff[s];
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ArrivalCoefficients, SelectivityCompounds) {
  Topology::Builder builder;
  builder.add_operator("src", 1e-3);
  builder.add_operator("flatmap", 1e-3, StateKind::kStateless, Selectivity{1.0, 3.0});
  builder.add_operator("window", 1e-3, StateKind::kStateful, Selectivity{2.0, 1.0});
  builder.add_operator("sink", 1e-3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  Topology t = builder.build();
  const auto coeff = arrival_coefficients_with_selectivity(t);
  EXPECT_DOUBLE_EQ(coeff[1], 1.0);
  EXPECT_DOUBLE_EQ(coeff[2], 3.0);        // flatmap tripled the flow
  EXPECT_DOUBLE_EQ(coeff[3], 1.5);        // window halved it
}

TEST(EnumeratePaths, FindsAllPaths) {
  Topology t = diamond_with_chord();
  const auto paths = enumerate_paths(t, t.source(), 3);
  ASSERT_EQ(paths.size(), 3u);  // src-a-sink, src-a-b-sink, src-b-sink
  double total_probability = 0.0;
  for (const Path& path : paths) {
    EXPECT_EQ(path.front(), t.source());
    EXPECT_EQ(path.back(), 3u);
    total_probability += path_probability(t, path);
  }
  EXPECT_NEAR(total_probability, 1.0, 1e-12);
}

TEST(EnumeratePaths, PathToSelfIsTrivial) {
  Topology t = diamond_with_chord();
  const auto paths = enumerate_paths(t, 2, 2);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (Path{2}));
  EXPECT_DOUBLE_EQ(path_probability(t, paths[0]), 1.0);
}

TEST(EnumeratePaths, NoPathYieldsEmpty) {
  Topology t = diamond_with_chord();
  EXPECT_TRUE(enumerate_paths(t, 2, 1).empty());  // b cannot reach a
}

TEST(EnumeratePaths, EnforcesLimit) {
  // A ladder of diamonds has exponentially many paths.
  Topology::Builder builder;
  builder.add_operator("v0", 1e-3);
  for (int layer = 0; layer < 8; ++layer) {
    const OpIndex base = static_cast<OpIndex>(3 * layer);
    builder.add_operator("l" + std::to_string(layer), 1e-3);
    builder.add_operator("r" + std::to_string(layer), 1e-3);
    builder.add_operator("j" + std::to_string(layer), 1e-3);
    builder.add_edge(base, base + 1, 0.5);
    builder.add_edge(base, base + 2, 0.5);
    builder.add_edge(base + 1, base + 3);
    builder.add_edge(base + 2, base + 3);
  }
  Topology t = builder.build();
  EXPECT_EQ(enumerate_paths(t, 0, static_cast<OpIndex>(t.num_operators() - 1)).size(), 256u);
  EXPECT_THROW(
      (void)enumerate_paths(t, 0, static_cast<OpIndex>(t.num_operators() - 1), 100),
      Error);
}

TEST(PathProbability, RejectsNonPaths) {
  Topology t = diamond_with_chord();
  EXPECT_THROW((void)path_probability(t, Path{}), Error);
  EXPECT_THROW((void)path_probability(t, Path{2, 1}), Error);  // no such edge
}

}  // namespace
}  // namespace ss
