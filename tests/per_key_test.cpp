// Tests of the PerKey adapter: per-key state isolation, flush-on-finish,
// clone freshness, and the registry wiring that gives partitioned-stateful
// windowed operators keyed windows.
#include "ops/per_key.hpp"

#include <gtest/gtest.h>

#include "ops/registry.hpp"
#include "ops/windowed.hpp"

namespace ss::ops {
namespace {

using runtime::Tuple;

class Capture final : public runtime::Collector {
 public:
  void emit(const Tuple& t) override { items.push_back(t); }
  void emit_to(OpIndex, const Tuple& t) override { items.push_back(t); }
  std::vector<Tuple> items;
};

Tuple make_tuple(double f0, std::int64_t key) {
  Tuple t;
  t.key = key;
  t.f[0] = f0;
  return t;
}

TEST(PerKey, WindowsAreIsolatedPerKey) {
  // Global WinSum(3,3) would mix keys; PerKey must not.
  PerKey keyed([] { return std::make_unique<WinSum>(3, 3); });
  Capture out;
  // Interleave two keys; each key's window fills after 3 of ITS items.
  for (int round = 0; round < 3; ++round) {
    keyed.process(make_tuple(1.0, 7), 0, out);
    keyed.process(make_tuple(10.0, 8), 0, out);
  }
  ASSERT_EQ(out.items.size(), 2u);
  // Key 7 sums 1+1+1 = 3; key 8 sums 10+10+10 = 30.
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 3.0);
  EXPECT_EQ(out.items[0].key, 7);
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 30.0);
  EXPECT_EQ(out.items[1].key, 8);
  EXPECT_EQ(keyed.keys_touched(), 2u);
}

TEST(PerKey, FinishFlushesEveryKey) {
  PerKey keyed([] { return std::make_unique<WinSum>(10, 10); });
  Capture out;
  keyed.process(make_tuple(2.0, 1), 0, out);
  keyed.process(make_tuple(3.0, 2), 0, out);
  EXPECT_TRUE(out.items.empty());
  keyed.on_finish(out);
  EXPECT_EQ(out.items.size(), 2u);  // one partial window per key
}

TEST(PerKey, CloneStartsEmpty) {
  PerKey keyed([] { return std::make_unique<WinSum>(2, 2); });
  Capture out;
  keyed.process(make_tuple(1.0, 5), 0, out);
  auto clone = keyed.clone();
  // The clone has no state for key 5: its first window needs 2 fresh items.
  clone->process(make_tuple(4.0, 5), 0, out);
  EXPECT_TRUE(out.items.empty());
  clone->process(make_tuple(6.0, 5), 0, out);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 10.0);
}

TEST(PerKey, RegistryLiftsPartitionedWindowedOperators) {
  OperatorSpec spec;
  spec.name = "agg";
  spec.impl = "win_sum";
  spec.service_time = 1e-3;
  spec.state = StateKind::kPartitionedStateful;
  spec.selectivity.input = 2.0;  // slide 2
  spec.keys = KeyDistribution::uniform(4);
  auto logic = make_logic(0, spec);

  Capture out;
  // Two items of key 0 and two of key 1: per-key windows trigger per key.
  logic->process(make_tuple(1.0, 0), 0, out);
  logic->process(make_tuple(2.0, 1), 0, out);
  logic->process(make_tuple(3.0, 0), 0, out);
  logic->process(make_tuple(4.0, 1), 0, out);
  ASSERT_EQ(out.items.size(), 2u);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 4.0);  // key 0: 1 + 3
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 6.0);  // key 1: 2 + 4
}

TEST(PerKey, RegistryKeepsGlobalWindowsForStatefulSpecs) {
  OperatorSpec spec;
  spec.name = "agg";
  spec.impl = "win_sum";
  spec.service_time = 1e-3;
  spec.state = StateKind::kStateful;  // global window
  spec.selectivity.input = 2.0;
  auto logic = make_logic(0, spec);
  Capture out;
  logic->process(make_tuple(1.0, 0), 0, out);
  logic->process(make_tuple(2.0, 1), 0, out);  // different key, same window
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 3.0);
}

}  // namespace
}  // namespace ss::ops
