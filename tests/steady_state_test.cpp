// Unit tests for Algorithm 1 (steady-state analysis under backpressure),
// including the paper's Fig. 11 / Table 1-2 example, Theorem 3.2 corrections,
// Proposition 3.5 flow conservation, and the §3.4 selectivity extensions.
#include "core/steady_state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/topology.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

// The six-operator example of paper Fig. 11.  Edge probabilities are the
// exact values reproducing every Table 1/2 cell (see DESIGN.md).
Topology fig11_topology(const std::vector<double>& service_ms) {
  Topology::Builder b;
  const char* names[] = {"op1", "op2", "op3", "op4", "op5", "op6"};
  for (int i = 0; i < 6; ++i) b.add_operator(names[i], service_ms[i] * kMs);
  b.add_edge(0, 1, 0.7);
  b.add_edge(0, 2, 0.3);
  b.add_edge(1, 5, 1.0);
  b.add_edge(2, 3, 2.0 / 3.0);
  b.add_edge(2, 4, 1.0 / 3.0);
  b.add_edge(3, 4, 0.25);
  b.add_edge(3, 5, 0.75);
  b.add_edge(4, 5, 1.0);
  return b.build();
}

TEST(SteadyState, Table1OriginalTopologyRates) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  SteadyStateResult r = steady_state(t);

  EXPECT_FALSE(r.has_bottleneck());
  EXPECT_NEAR(r.throughput(), 1000.0, 1e-6);

  // delta^-1 in ms, as reported in Table 1: 1.00, 1.42, 3.33, 5.0, 6.67, 1.00
  EXPECT_NEAR(1e3 / r.rates[0].departure, 1.00, 0.01);
  EXPECT_NEAR(1e3 / r.rates[1].departure, 1.0 / 0.7, 0.01);
  EXPECT_NEAR(1e3 / r.rates[2].departure, 1.0 / 0.3, 0.01);
  EXPECT_NEAR(1e3 / r.rates[3].departure, 5.00, 0.01);
  EXPECT_NEAR(1e3 / r.rates[4].departure, 1.0 / 0.15, 0.01);
  EXPECT_NEAR(1e3 / r.rates[5].departure, 1.00, 0.01);

  // rho: 1.00, 0.84, 0.21, 0.40, 0.225, 0.20
  EXPECT_NEAR(r.rates[0].utilization, 1.00, 1e-9);
  EXPECT_NEAR(r.rates[1].utilization, 0.84, 1e-9);
  EXPECT_NEAR(r.rates[2].utilization, 0.21, 1e-9);
  EXPECT_NEAR(r.rates[3].utilization, 0.40, 1e-9);
  EXPECT_NEAR(r.rates[4].utilization, 0.225, 1e-9);
  EXPECT_NEAR(r.rates[5].utilization, 0.20, 1e-9);
}

TEST(SteadyState, Table2OriginalTopologyKeepsSameRates) {
  // Table 2 changes service times of ops 3-5 but nothing saturates, so the
  // departure rates stay identical to Table 1 (only rho changes).
  Topology t = fig11_topology({1.0, 1.2, 1.5, 2.7, 2.2, 0.2});
  SteadyStateResult r = steady_state(t);
  EXPECT_FALSE(r.has_bottleneck());
  EXPECT_NEAR(r.throughput(), 1000.0, 1e-6);
  EXPECT_NEAR(r.rates[2].utilization, 0.45, 1e-9);
  EXPECT_NEAR(r.rates[3].utilization, 0.54, 1e-9);
  EXPECT_NEAR(r.rates[4].utilization, 0.33, 1e-9);
}

TEST(SteadyState, PipelineBottleneckCapsThroughput) {
  // src(1ms) -> slow(4ms) -> sink(0.1ms): throughput = 250/s.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 4.0 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  SteadyStateResult r = steady_state(b.build());
  EXPECT_TRUE(r.has_bottleneck());
  ASSERT_EQ(r.bottlenecks.size(), 1u);
  EXPECT_EQ(r.bottlenecks[0], 1u);
  EXPECT_NEAR(r.throughput(), 250.0, 1e-6);
  EXPECT_NEAR(r.rates[1].utilization, 1.0, 1e-9);
  // Backpressure propagates to the source: it departs at 250/s.
  EXPECT_NEAR(r.rates[0].departure, 250.0, 1e-6);
}

TEST(SteadyState, CorrectionFactorMatchesTheorem32) {
  // Theorem 3.2: the corrective factor equals 1/rho of the bottleneck.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 0.5 * kMs);
  b.add_operator("slow", 2.5 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  SteadyStateResult r = steady_state(b.build());
  // rho of slow at full source rate = 1000/400 = 2.5 -> delta1 = 1000/2.5.
  EXPECT_NEAR(r.throughput(), 400.0, 1e-6);
  EXPECT_EQ(r.restarts, 1);
}

TEST(SteadyState, BottleneckBehindProbabilisticFanOut) {
  // Only 20% of traffic reaches the slow operator, so the correction is
  // milder than the raw service-rate ratio.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("fast", 0.2 * kMs);
  b.add_operator("slow", 10.0 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1, 0.8);
  b.add_edge(0, 2, 0.2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  SteadyStateResult r = steady_state(b.build());
  // lambda_slow = 0.2 * delta1; saturation at delta1 = 100/0.2 = 500.
  EXPECT_NEAR(r.throughput(), 500.0, 1e-6);
  ASSERT_EQ(r.bottlenecks.size(), 1u);
  EXPECT_EQ(r.bottlenecks[0], 2u);
}

TEST(SteadyState, CascadedBottlenecksConvergeToSlowest) {
  // Two bottlenecks in sequence: final rate is set by the slowest.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow1", 2.0 * kMs);
  b.add_operator("slow2", 5.0 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  SteadyStateResult r = steady_state(b.build());
  EXPECT_NEAR(r.throughput(), 200.0, 1e-6);
  EXPECT_EQ(r.bottlenecks.size(), 2u);
  EXPECT_GE(r.restarts, 2);
}

TEST(SteadyState, FlowConservationAtSinks) {
  // Proposition 3.5: source departure equals total sink departure under
  // unit selectivities, bottleneck or not.
  Topology t = fig11_topology({1.0, 1.2, 9.5, 2.0, 1.5, 0.2});  // op3 saturates
  SteadyStateResult r = steady_state(t);
  EXPECT_TRUE(r.has_bottleneck());
  EXPECT_NEAR(r.sink_rate, r.source_rate, 1e-6 * r.source_rate);
}

TEST(SteadyState, SourceUtilizationReflectsCorrection) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 2.0 * kMs);
  b.add_edge(0, 1);
  SteadyStateResult r = steady_state(b.build());
  EXPECT_NEAR(r.rates[0].utilization, 0.5, 1e-9);
}

TEST(SteadyState, InputSelectivitySlowsDownstreamArrivals) {
  // Windowed operator consuming 10 items per result: downstream sees 1/10th.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("window", 0.5 * kMs, StateKind::kStateful, Selectivity{10.0, 1.0});
  b.add_operator("sink", 0.2 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  SteadyStateResult r = steady_state(b.build());
  EXPECT_NEAR(r.throughput(), 1000.0, 1e-6);
  EXPECT_NEAR(r.rates[1].departure, 100.0, 1e-6);
  EXPECT_NEAR(r.rates[2].arrival, 100.0, 1e-6);
}

TEST(SteadyState, OutputSelectivityMultipliesDownstreamArrivals) {
  // Flatmap producing 3 items per input can saturate a downstream operator
  // even when nominal rates look fine.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("flatmap", 0.5 * kMs, StateKind::kStateless, Selectivity{1.0, 3.0});
  b.add_operator("sink", 0.5 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  SteadyStateResult r = steady_state(b.build());
  // sink receives 3 * delta1 and serves 2000/s -> delta1 = 2000/3.
  EXPECT_NEAR(r.throughput(), 2000.0 / 3.0, 1e-6);
  ASSERT_EQ(r.bottlenecks.size(), 1u);
  EXPECT_EQ(r.bottlenecks[0], 2u);
}

TEST(SteadyState, FilterSelectivityReducesDownstreamLoad) {
  // A selective filter (output selectivity 0.1) shields a slow sink.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("filter", 0.1 * kMs, StateKind::kStateless, Selectivity{1.0, 0.1});
  b.add_operator("slow_sink", 5.0 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  SteadyStateResult r = steady_state(b.build());
  EXPECT_FALSE(r.has_bottleneck());
  EXPECT_NEAR(r.throughput(), 1000.0, 1e-6);
  EXPECT_NEAR(r.rates[2].arrival, 100.0, 1e-6);
}

TEST(SteadyState, ReplicationPlanRaisesCapacity) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 4.0 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();

  ReplicationPlan plan;
  plan.replicas = {1, 4, 1};
  SteadyStateResult r = steady_state(t, plan);
  EXPECT_FALSE(r.has_bottleneck());
  EXPECT_NEAR(r.throughput(), 1000.0, 1e-6);
  EXPECT_NEAR(r.rates[1].capacity, 1000.0, 1e-6);
}

TEST(SteadyState, MaxShareLimitsPartitionedCapacity) {
  // With p_max = 0.5, two replicas do not double capacity: the loaded one
  // saturates at lambda * 0.5 = mu.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  OperatorSpec agg;
  agg.name = "agg";
  agg.service_time = 4.0 * kMs;
  agg.state = StateKind::kPartitionedStateful;
  agg.keys = KeyDistribution({0.5, 0.25, 0.25});
  b.add_operator(std::move(agg));
  b.add_edge(0, 1);
  Topology t = b.build();

  ReplicationPlan plan;
  plan.replicas = {1, 2};
  plan.max_share = {0.0, 0.5};
  SteadyStateResult r = steady_state(t, plan);
  EXPECT_NEAR(r.rates[1].capacity, 500.0, 1e-6);
  EXPECT_NEAR(r.throughput(), 500.0, 1e-6);
}

TEST(SteadyState, IdealSourceRate) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  EXPECT_NEAR(ideal_source_rate(t), 1000.0, 1e-9);
}

TEST(SteadyState, SingleOperatorTopology) {
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  SteadyStateResult r = steady_state(b.build());
  EXPECT_NEAR(r.throughput(), 500.0, 1e-9);
  EXPECT_NEAR(r.sink_rate, 500.0, 1e-9);
  EXPECT_FALSE(r.has_bottleneck());
}

TEST(ReplicationPlan, Accessors) {
  ReplicationPlan plan;
  EXPECT_EQ(plan.replicas_of(3), 1);
  EXPECT_DOUBLE_EQ(plan.max_share_of(3), 1.0);
  plan.replicas = {2, 4};
  EXPECT_EQ(plan.replicas_of(1), 4);
  EXPECT_DOUBLE_EQ(plan.max_share_of(1), 0.25);
  plan.max_share = {0.0, 0.4};
  EXPECT_DOUBLE_EQ(plan.max_share_of(0), 0.5);  // <=0 falls back to 1/n
  EXPECT_DOUBLE_EQ(plan.max_share_of(1), 0.4);
  EXPECT_EQ(plan.total_replicas(3), 2 + 4 + 1);
  EXPECT_EQ(ReplicationPlan::uniform(3, 2).total_replicas(3), 6);
}

}  // namespace
}  // namespace ss
