// Tests of the latency-estimation extension: M/M/1 response times,
// saturation capping, window buffering delay, path-weighted end-to-end
// composition, and agreement with queueing-theory ground truths.
#include "core/latency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/topology.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

TEST(Latency, SingleQueueMatchesMm1) {
  // Source at 500/s into a 1 ms server: rho = 0.5, W = 1/(1000-500) = 2 ms.
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("q", 1.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates);
  EXPECT_NEAR(est.response[1], 2.0 * kMs, 1e-9);
  EXPECT_NEAR(est.end_to_end, (2.0 + 2.0) * kMs, 1e-9);
}

TEST(Latency, ResponseGrowsWithUtilization) {
  double previous = 0.0;
  for (double source_ms : {4.0, 2.0, 1.3, 1.05}) {
    Topology::Builder b;
    b.add_operator("src", source_ms * kMs);
    b.add_operator("q", 1.0 * kMs);
    b.add_edge(0, 1);
    Topology t = b.build();
    LatencyEstimate est = estimate_latency(t, steady_state(t));
    EXPECT_GT(est.response[1], previous);
    previous = est.response[1];
  }
}

TEST(Latency, SaturatedOperatorCappedByBuffer) {
  // Bottleneck overdriven 4x: the buffer pins toward full and the response
  // is the standing queue drained at the served rate -- bounded by the
  // half-full critical queue below and the full buffer above, never
  // infinity.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 4.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates, {}, /*buffer_capacity=*/16);
  EXPECT_TRUE(est.congested[1]);
  const double drain = 4.0 * kMs;  // per-item drain interval at mu
  EXPECT_GE(est.response[1], 0.5 * 17.0 * drain);
  EXPECT_LE(est.response[1], 17.0 * drain);
}

TEST(Latency, ReplicasReduceResponse) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("work", 2.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();

  ReplicationPlan plan;
  plan.replicas = {1, 4};
  SteadyStateResult rates = steady_state(t, plan);
  LatencyEstimate est = estimate_latency(t, rates, plan);
  // Per replica: lambda = 250/s, mu = 500/s.  Round-robin fission
  // regularizes arrivals (ca^2 = 1/4), so the Allen-Cunneen wait is
  // (1/4 + 1)/2 * 2 ms = 1.25 ms on top of the 2 ms service: 3.25 ms
  // (vs saturation without fission, and vs 4 ms for an independent M/M/1).
  EXPECT_NEAR(est.response[1], 3.25 * kMs, 1e-9);
  EXPECT_NEAR(est.response_var[1], 3.25 * kMs * 3.25 * kMs, 1e-12);
}

TEST(Latency, PercentilesExactForSingleExponentialHop) {
  // M/M/1 response is exponential: p99 = ln(100) * W.  The moment-matched
  // gamma (shape 1) + Wilson-Hilferty quantile should land within 1%.
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("q", 1.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  LatencyEstimate est = estimate_latency(t, steady_state(t));
  const double w = est.response[1];
  EXPECT_NEAR(est.sojourn_mean, w, 1e-12);
  EXPECT_NEAR(est.sojourn.p50, std::log(2.0) * w, 0.02 * w);
  EXPECT_NEAR(est.sojourn.p99, std::log(100.0) * w, 0.02 * std::log(100.0) * w);
}

TEST(Latency, CongestionPropagatesUpstreamOfBottleneck) {
  // src -> mid -> slow: slow saturates, so mid's buffer is also full under
  // BAS even though mid's own utilization is low.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("mid", 0.5 * kMs);
  b.add_operator("slow", 4.0 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates, {}, /*buffer_capacity=*/16);
  EXPECT_TRUE(est.congested[2]);
  EXPECT_TRUE(est.congested[1]);
  EXPECT_FALSE(est.congested[0]);
  // mid holds a standing queue drained at the throttled throughput
  // (250/s), not at its own mu (2000/s): far above its open-queue
  // response, bounded by the full buffer.
  const double drain = 1.0 / rates.rates[1].arrival;
  EXPECT_GE(est.response[1], 0.5 * 17.0 * drain);
  EXPECT_LE(est.response[1], 17.0 * drain);
  // Standing-queue drain tail: variance well below the exponential mean^2.
  EXPECT_LT(est.response_var[1], est.response[1] * est.response[1] / 2.0);
}

TEST(Latency, PathWeightedEndToEnd) {
  // Fork: fast branch (p=0.8) and slow branch (p=0.2); end-to-end is the
  // probability-weighted mix.
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("fast", 0.5 * kMs);
  b.add_operator("slow", 1.0 * kMs);
  b.add_edge(0, 1, 0.8);
  b.add_edge(0, 2, 0.2);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates);
  const double expected =
      est.response[0] + 0.8 * est.response[1] + 0.2 * est.response[2];
  EXPECT_NEAR(est.end_to_end, expected, 1e-12);
}

TEST(Latency, WindowedOperatorsReportBufferingDelay) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("window", 0.2 * kMs, StateKind::kStateful, Selectivity{10.0, 1.0});
  b.add_edge(0, 1);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates);
  // (s-1)/(2*lambda) = 9 / 2000 = 4.5 ms of average slide wait.
  EXPECT_NEAR(est.window_delay[1], 4.5 * kMs, 1e-9);
  EXPECT_DOUBLE_EQ(est.window_delay[0], 0.0);
  EXPECT_GT(est.end_to_end, est.window_delay[1]);
}

TEST(Latency, SourceContributesGenerationTimeOnly) {
  Topology::Builder b;
  b.add_operator("src", 3.0 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  LatencyEstimate est = estimate_latency(t, steady_state(t));
  EXPECT_NEAR(est.response[0], 3.0 * kMs, 1e-12);
}

}  // namespace
}  // namespace ss
