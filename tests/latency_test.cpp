// Tests of the latency-estimation extension: M/M/1 response times,
// saturation capping, window buffering delay, path-weighted end-to-end
// composition, and agreement with queueing-theory ground truths.
#include "core/latency.hpp"

#include <gtest/gtest.h>

#include "core/topology.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

TEST(Latency, SingleQueueMatchesMm1) {
  // Source at 500/s into a 1 ms server: rho = 0.5, W = 1/(1000-500) = 2 ms.
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("q", 1.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates);
  EXPECT_NEAR(est.response[1], 2.0 * kMs, 1e-9);
  EXPECT_NEAR(est.end_to_end, (2.0 + 2.0) * kMs, 1e-9);
}

TEST(Latency, ResponseGrowsWithUtilization) {
  double previous = 0.0;
  for (double source_ms : {4.0, 2.0, 1.3, 1.05}) {
    Topology::Builder b;
    b.add_operator("src", source_ms * kMs);
    b.add_operator("q", 1.0 * kMs);
    b.add_edge(0, 1);
    Topology t = b.build();
    LatencyEstimate est = estimate_latency(t, steady_state(t));
    EXPECT_GT(est.response[1], previous);
    previous = est.response[1];
  }
}

TEST(Latency, SaturatedOperatorCappedByBuffer) {
  // Bottleneck: rho = 1 after correction -> W = (B+1)/mu, not infinity.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 4.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates, {}, /*buffer_capacity=*/16);
  EXPECT_NEAR(est.response[1], 17.0 * 4.0 * kMs, 1e-9);
}

TEST(Latency, ReplicasReduceResponse) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("work", 2.0 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();

  ReplicationPlan plan;
  plan.replicas = {1, 4};
  SteadyStateResult rates = steady_state(t, plan);
  LatencyEstimate est = estimate_latency(t, rates, plan);
  // Per replica: lambda = 250/s, mu = 500/s -> W = 4 ms (vs saturation
  // without fission).
  EXPECT_NEAR(est.response[1], 4.0 * kMs, 1e-9);
}

TEST(Latency, PathWeightedEndToEnd) {
  // Fork: fast branch (p=0.8) and slow branch (p=0.2); end-to-end is the
  // probability-weighted mix.
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("fast", 0.5 * kMs);
  b.add_operator("slow", 1.0 * kMs);
  b.add_edge(0, 1, 0.8);
  b.add_edge(0, 2, 0.2);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates);
  const double expected =
      est.response[0] + 0.8 * est.response[1] + 0.2 * est.response[2];
  EXPECT_NEAR(est.end_to_end, expected, 1e-12);
}

TEST(Latency, WindowedOperatorsReportBufferingDelay) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("window", 0.2 * kMs, StateKind::kStateful, Selectivity{10.0, 1.0});
  b.add_edge(0, 1);
  Topology t = b.build();
  SteadyStateResult rates = steady_state(t);
  LatencyEstimate est = estimate_latency(t, rates);
  // (s-1)/(2*lambda) = 9 / 2000 = 4.5 ms of average slide wait.
  EXPECT_NEAR(est.window_delay[1], 4.5 * kMs, 1e-9);
  EXPECT_DOUBLE_EQ(est.window_delay[0], 0.0);
  EXPECT_GT(est.end_to_end, est.window_delay[1]);
}

TEST(Latency, SourceContributesGenerationTimeOnly) {
  Topology::Builder b;
  b.add_operator("src", 3.0 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  Topology t = b.build();
  LatencyEstimate est = estimate_latency(t, steady_state(t));
  EXPECT_NEAR(est.response[0], 3.0 * kMs, 1e-12);
}

}  // namespace
}  // namespace ss
