// Unit tests for routing tables: probabilistic edge choice and replica
// selection (round-robin, key-partition, share-weighted).
#include "runtime/routing.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/error.hpp"

namespace ss::runtime {
namespace {

Topology fan_out_topology() {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_operator("c", 1e-3);
  b.add_edge(0, 1, 0.2);
  b.add_edge(0, 2, 0.5);
  b.add_edge(0, 3, 0.3);
  return b.build();
}

TEST(EdgeRouter, EmptyForSinks) {
  Topology t = fan_out_topology();
  EdgeRouter router(t, 1);
  EXPECT_FALSE(router.has_destinations());
  Rng rng(1);
  EXPECT_EQ(router.choose(rng), kInvalidOp);
}

TEST(EdgeRouter, SingleEdgeIsDeterministic) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("next", 1e-3);
  b.add_edge(0, 1);
  Topology t = b.build();
  EdgeRouter router(t, 0);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(router.choose(rng), 1u);
}

TEST(EdgeRouter, FrequenciesMatchProbabilities) {
  Topology t = fan_out_topology();
  EdgeRouter router(t, 0);
  Rng rng(123);
  std::map<OpIndex, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[router.choose(rng)]++;
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(EdgeRouter, IsDestination) {
  Topology t = fan_out_topology();
  EdgeRouter router(t, 0);
  EXPECT_TRUE(router.is_destination(1));
  EXPECT_TRUE(router.is_destination(3));
  EXPECT_FALSE(router.is_destination(0));
}

TEST(ReplicaSelector, RoundRobinCycles) {
  ReplicaSelector s = ReplicaSelector::round_robin(3);
  Rng rng(1);
  EXPECT_EQ(s.select(0, rng), 0);
  EXPECT_EQ(s.select(0, rng), 1);
  EXPECT_EQ(s.select(0, rng), 2);
  EXPECT_EQ(s.select(0, rng), 0);
}

TEST(ReplicaSelector, ByKeyUsesPartitionMap) {
  KeyPartition p;
  p.replica_of_key = {0, 1, 1, 0};
  p.replicas = 2;
  p.max_share = 0.5;
  ReplicaSelector s = ReplicaSelector::by_key(p);
  Rng rng(1);
  EXPECT_EQ(s.select(0, rng), 0);
  EXPECT_EQ(s.select(1, rng), 1);
  EXPECT_EQ(s.select(2, rng), 1);
  EXPECT_EQ(s.select(3, rng), 0);
  EXPECT_EQ(s.select(5, rng), 1);   // 5 mod 4 = 1
  EXPECT_EQ(s.select(-1, rng), 0);  // negative keys wrap positively: 3
}

TEST(ReplicaSelector, BySharePreservesLoadSplit) {
  ReplicaSelector s = ReplicaSelector::by_share({0.7, 0.2, 0.1});
  Rng rng(99);
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[s.select(0, rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.1, 0.02);
}

TEST(ReplicaSelector, RejectsInvalidConfigs) {
  EXPECT_THROW((void)ReplicaSelector::round_robin(0), Error);
  EXPECT_THROW((void)ReplicaSelector::by_key(KeyPartition{}), Error);
  EXPECT_THROW((void)ReplicaSelector::by_share({}), Error);
  EXPECT_THROW((void)ReplicaSelector::by_share({0.0, 0.0}), Error);
}

}  // namespace
}  // namespace ss::runtime
