// Behavioural tests of the 20 real-world operators (paper §5.1), the
// count-window utility, and the registry factories.
#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "ops/join.hpp"
#include "ops/keyed.hpp"
#include "ops/registry.hpp"
#include "ops/spatial.hpp"
#include "ops/stateless.hpp"
#include "ops/window.hpp"
#include "ops/windowed.hpp"

namespace ss::ops {
namespace {

using runtime::Tuple;

/// Collects everything emitted.
class Capture final : public runtime::Collector {
 public:
  void emit(const Tuple& t) override { items.push_back(t); }
  void emit_to(OpIndex target, const Tuple& t) override {
    targets.push_back(target);
    items.push_back(t);
  }
  std::vector<Tuple> items;
  std::vector<OpIndex> targets;
};

Tuple make_tuple(double f0, std::int64_t key = 0, std::int64_t id = 0) {
  Tuple t;
  t.id = id;
  t.key = key;
  t.f[0] = f0;
  return t;
}

// ------------------------------------------------------------ CountWindow

TEST(CountWindow, TriggersEverySlide) {
  CountWindow w(5, 2);
  Capture out;
  int triggers = 0;
  for (int i = 0; i < 10; ++i) {
    if (w.push(make_tuple(i))) ++triggers;
  }
  EXPECT_EQ(triggers, 5);
  EXPECT_EQ(w.size(), 5u);  // bounded by the window length
}

TEST(CountWindow, KeepsLastLengthItems) {
  CountWindow w(3, 1);
  for (int i = 0; i < 7; ++i) w.push(make_tuple(i));
  ASSERT_EQ(w.contents().size(), 3u);
  EXPECT_DOUBLE_EQ(w.contents().front().f[0], 4.0);
  EXPECT_DOUBLE_EQ(w.contents().back().f[0], 6.0);
}

TEST(CountWindow, PendingTracksPartialSlides) {
  CountWindow w(10, 3);
  w.push(make_tuple(1));
  EXPECT_TRUE(w.has_pending());
  w.push(make_tuple(2));
  w.push(make_tuple(3));  // slide fires
  EXPECT_FALSE(w.has_pending());
  EXPECT_THROW(CountWindow(0, 1), Error);
}

// -------------------------------------------------------------- stateless

TEST(Stateless, FilterDropsBelowThreshold) {
  Filter filter(0.5);
  Capture out;
  filter.process(make_tuple(0.4), 0, out);
  filter.process(make_tuple(0.6), 0, out);
  filter.process(make_tuple(0.5), 0, out);  // boundary kept
  ASSERT_EQ(out.items.size(), 2u);
}

TEST(Stateless, MapAffineTransforms) {
  MapAffine map(3.0, -1.0);
  Capture out;
  map.process(make_tuple(2.0), 0, out);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[0], 5.0);
}

TEST(Stateless, MapMathIsDeterministicAndFinite) {
  MapMath map(8);
  Capture a;
  Capture b;
  map.process(make_tuple(0.7), 0, a);
  MapMath map2(8);
  map2.process(make_tuple(0.7), 0, b);
  ASSERT_EQ(a.items.size(), 1u);
  EXPECT_DOUBLE_EQ(a.items[0].f[1], b.items[0].f[1]);
  EXPECT_TRUE(std::isfinite(a.items[0].f[1]));
}

TEST(Stateless, FlatMapExpandsWithOrdinals) {
  FlatMapExpand expand(3);
  Capture out;
  expand.process(make_tuple(1.0), 0, out);
  ASSERT_EQ(out.items.size(), 3u);
  EXPECT_DOUBLE_EQ(out.items[0].f[2], 0.0);
  EXPECT_DOUBLE_EQ(out.items[2].f[2], 2.0);
}

TEST(Stateless, ProjectionClearsAuxiliaryFields) {
  Projection projection;
  Tuple t = make_tuple(1.0);
  t.f[1] = t.f[2] = t.f[3] = 9.0;
  Capture out;
  projection.process(t, 0, out);
  EXPECT_DOUBLE_EQ(out.items[0].f[0], 1.0);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 0.0);
  EXPECT_DOUBLE_EQ(out.items[0].f[3], 0.0);
}

TEST(Stateless, SamplerRateConverges) {
  Sampler sampler(0.3, 42);
  Capture out;
  constexpr int kItems = 20000;
  for (int i = 0; i < kItems; ++i) sampler.process(make_tuple(1.0), 0, out);
  EXPECT_NEAR(out.items.size() / static_cast<double>(kItems), 0.3, 0.02);
}

TEST(Stateless, EnrichIsDeterministicPerKey) {
  Enrich enrich(64);
  Capture out;
  enrich.process(make_tuple(1.0, /*key=*/7), 0, out);
  enrich.process(make_tuple(2.0, /*key=*/7), 0, out);
  enrich.process(make_tuple(3.0, /*key=*/-7), 0, out);  // negative keys legal
  ASSERT_EQ(out.items.size(), 3u);
  EXPECT_DOUBLE_EQ(out.items[0].f[3], out.items[1].f[3]);
  EXPECT_GE(out.items[2].f[3], 0.0);
}

TEST(Stateless, ClampBounds) {
  Clamp clamp(0.0, 1.0);
  Capture out;
  clamp.process(make_tuple(-3.0), 0, out);
  clamp.process(make_tuple(0.5), 0, out);
  clamp.process(make_tuple(7.0), 0, out);
  EXPECT_DOUBLE_EQ(out.items[0].f[0], 0.0);
  EXPECT_DOUBLE_EQ(out.items[1].f[0], 0.5);
  EXPECT_DOUBLE_EQ(out.items[2].f[0], 1.0);
}

// ------------------------------------------------------------------ keyed

TEST(Keyed, CounterCountsPerKey) {
  KeyedCounter counter;
  Capture out;
  counter.process(make_tuple(1.0, 1), 0, out);
  counter.process(make_tuple(1.0, 2), 0, out);
  counter.process(make_tuple(1.0, 1), 0, out);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 1.0);
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 1.0);  // separate key
  EXPECT_DOUBLE_EQ(out.items[2].f[1], 2.0);
}

TEST(Keyed, RunningSumAccumulatesPerKey) {
  KeyedRunningSum sum;
  Capture out;
  sum.process(make_tuple(2.0, 5), 0, out);
  sum.process(make_tuple(3.0, 5), 0, out);
  sum.process(make_tuple(10.0, 6), 0, out);
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 5.0);
  EXPECT_DOUBLE_EQ(out.items[2].f[1], 10.0);
}

TEST(Keyed, AverageTracksMeanPerKey) {
  KeyedAverage avg;
  Capture out;
  avg.process(make_tuple(1.0, 9), 0, out);
  avg.process(make_tuple(3.0, 9), 0, out);
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 2.0);
}

TEST(Keyed, DistinctSuppressesDuplicates) {
  KeyedDistinct distinct(0.1);
  Capture out;
  distinct.process(make_tuple(0.51, 1), 0, out);
  distinct.process(make_tuple(0.52, 1), 0, out);  // same bucket: suppressed
  distinct.process(make_tuple(0.91, 1), 0, out);  // new bucket
  distinct.process(make_tuple(0.51, 2), 0, out);  // same bucket, other key
  EXPECT_EQ(out.items.size(), 3u);
}

TEST(Keyed, CloneStartsWithFreshState) {
  KeyedCounter counter;
  Capture out;
  counter.process(make_tuple(1.0, 1), 0, out);
  auto clone = counter.clone();
  clone->process(make_tuple(1.0, 1), 0, out);
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 1.0);  // clone did not inherit counts
}

// --------------------------------------------------------------- windowed

TEST(Windowed, WinSumAggregates) {
  WinSum sum(4, 2);
  Capture out;
  for (int i = 1; i <= 6; ++i) sum.process(make_tuple(i), 0, out);
  // Triggers after items 2 (1+2), 4 (1+2+3+4), 6 (3+4+5+6).
  ASSERT_EQ(out.items.size(), 3u);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 3.0);
  EXPECT_DOUBLE_EQ(out.items[1].f[1], 10.0);
  EXPECT_DOUBLE_EQ(out.items[2].f[1], 18.0);
}

TEST(Windowed, WinMaxMin) {
  WinMax max(3, 3);
  WinMin min(3, 3);
  Capture max_out;
  Capture min_out;
  for (double v : {5.0, 1.0, 3.0}) {
    max.process(make_tuple(v), 0, max_out);
    min.process(make_tuple(v), 0, min_out);
  }
  ASSERT_EQ(max_out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(max_out.items[0].f[1], 5.0);
  EXPECT_DOUBLE_EQ(min_out.items[0].f[1], 1.0);
}

TEST(Windowed, WmaWeightsRecentItemsHeavier) {
  Wma wma(3, 3);
  Capture out;
  for (double v : {0.0, 0.0, 9.0}) wma.process(make_tuple(v), 0, out);
  // Weights 1,2,3 -> (0*1 + 0*2 + 9*3) / 6 = 4.5 (> plain mean 3.0).
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 4.5);
}

TEST(Windowed, QuantileComputesPercentile) {
  WinQuantile quantile(10, 10, 0.5);
  Capture out;
  for (int i = 1; i <= 10; ++i) quantile.process(make_tuple(i), 0, out);
  ASSERT_EQ(out.items.size(), 1u);
  // Median rank floor(0.5 * 9) = 4 -> value 5 of 1..10.
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 5.0);
}

TEST(Windowed, FinishFlushesPartialWindow) {
  WinSum sum(10, 5);
  Capture out;
  sum.process(make_tuple(2.0), 0, out);
  sum.process(make_tuple(3.0), 0, out);
  EXPECT_TRUE(out.items.empty());
  sum.on_finish(out);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[1], 5.0);
}

// ---------------------------------------------------------------- spatial

TEST(Spatial, SkylineKeepsNonDominatedPoints) {
  Skyline skyline(4, 4);
  Capture out;
  // (1,4) and (4,1) are incomparable; (2,2) dominated by (3,3); (3,3) kept.
  const double points[][2] = {{1, 4}, {4, 1}, {2, 2}, {3, 3}};
  for (const auto& p : points) {
    Tuple t = make_tuple(p[0]);
    t.f[1] = p[1];
    skyline.process(t, 0, out);
  }
  ASSERT_EQ(out.items.size(), 3u);  // (1,4), (4,1), (3,3)
  for (const Tuple& t : out.items) {
    EXPECT_FALSE(t.f[0] == 2.0 && t.f[1] == 2.0);
  }
}

TEST(Spatial, TopKEmitsDescending) {
  TopK topk(5, 5, 3);
  Capture out;
  for (double v : {2.0, 9.0, 4.0, 7.0, 1.0}) topk.process(make_tuple(v), 0, out);
  ASSERT_EQ(out.items.size(), 3u);
  EXPECT_DOUBLE_EQ(out.items[0].f[0], 9.0);
  EXPECT_DOUBLE_EQ(out.items[1].f[0], 7.0);
  EXPECT_DOUBLE_EQ(out.items[2].f[0], 4.0);
}

// ------------------------------------------------------------------- join

TEST(Join, BandJoinMatchesWithinBand) {
  BandJoin join(8, 0.1);
  Capture out;
  join.process(make_tuple(1.00, 1), /*from=*/10, out);  // left side
  join.process(make_tuple(1.05, 2), /*from=*/20, out);  // right: matches
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[2], 1.00);
  EXPECT_DOUBLE_EQ(out.items[0].f[3], 1.0);  // matched key
  join.process(make_tuple(5.0, 3), /*from=*/10, out);  // left: no match
  EXPECT_EQ(out.items.size(), 1u);
}

TEST(Join, WindowsEvictOldTuples) {
  BandJoin join(2, 0.01);
  Capture out;
  join.process(make_tuple(1.0, 1), 10, out);
  join.process(make_tuple(2.0, 2), 10, out);
  join.process(make_tuple(3.0, 3), 10, out);  // evicts the 1.0 tuple
  join.process(make_tuple(1.0, 4), 20, out);  // right probe: no match left
  EXPECT_TRUE(out.items.empty());
  join.process(make_tuple(3.0, 5), 20, out);  // matches the 3.0 tuple
  EXPECT_EQ(out.items.size(), 1u);
}

TEST(Join, ManyToManyMatches) {
  BandJoin join(8, 0.5);
  Capture out;
  join.process(make_tuple(1.0, 1), 10, out);
  join.process(make_tuple(1.2, 2), 10, out);
  join.process(make_tuple(1.1, 3), 20, out);  // matches both left tuples
  EXPECT_EQ(out.items.size(), 2u);
}

// --------------------------------------------------------------- registry

TEST(Registry, MakeLogicBuildsEveryCatalogEntry) {
  for (const CatalogEntry& entry : catalog()) {
    OperatorSpec spec;
    spec.name = entry.impl;
    spec.impl = entry.impl;
    spec.service_time = 1e-3;
    if (entry.windowed) spec.selectivity.input = 10.0;
    auto logic = make_logic(0, spec);
    ASSERT_NE(logic, nullptr) << entry.impl;
    // Every logic must be cloneable for fission.
    EXPECT_NE(logic->clone(), nullptr) << entry.impl;
  }
}

TEST(Registry, EmptyImplFallsBackToSynthetic) {
  OperatorSpec spec;
  spec.name = "x";
  spec.service_time = 1e-6;
  EXPECT_NE(make_logic(0, spec), nullptr);
  spec.impl = "synthetic";
  EXPECT_NE(make_logic(0, spec), nullptr);
}

TEST(Registry, RejectsMetaAndUnknown) {
  OperatorSpec spec;
  spec.name = "x";
  spec.service_time = 1e-3;
  spec.impl = "meta";
  EXPECT_THROW((void)make_logic(0, spec), Error);
  spec.impl = "no_such_operator";
  EXPECT_THROW((void)make_logic(0, spec), Error);
}

TEST(Registry, SinkAndIdentityForward) {
  OperatorSpec spec;
  spec.name = "sink";
  spec.impl = "sink";
  spec.service_time = 1e-3;
  auto logic = make_logic(0, spec);
  Capture out;
  logic->process(make_tuple(3.5), 0, out);
  ASSERT_EQ(out.items.size(), 1u);
  EXPECT_DOUBLE_EQ(out.items[0].f[0], 3.5);
}

}  // namespace
}  // namespace ss::ops
