// Tests of the experiment harness: CLI args, table formatting, stats
// helpers, and the predicted-vs-measured comparison plumbing on both
// engines (a miniature Figure 7 as an integration test).
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace ss::harness {
namespace {

// -------------------------------------------------------------------- Args

TEST(Args, ParsesAllForms) {
  // NB: a bare `--flag` greedily consumes a following non-flag token, so
  // positionals go before flags (or use --key=value exclusively).
  const char* argv[] = {"prog",        "positional", "--alpha=1.5", "--name",
                        "zed",         "--count",    "42",          "--flag"};
  Args args(8, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get("name"), "zed");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag"), "true");
  EXPECT_EQ(args.get_int("count", 0), 42);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Args, FallbacksForMissingKeys) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.has("missing"));
}

// ------------------------------------------------------------------- Table

TEST(Table, AlignsColumnsAndPads) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer_name"});  // short rows are padded
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer_name"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::percent(0.0325), "3.25%");
}

TEST(Stats, MeanStdDevMax) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
  EXPECT_NEAR(stddev(values), 1.118, 1e-3);
  EXPECT_DOUBLE_EQ(max_value(values), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(5.0, 0.0), 1.0);
}

// -------------------------------------------------------------- experiment

TEST(Experiment, EngineParsing) {
  EXPECT_EQ(engine_from_string("sim"), Engine::kSim);
  EXPECT_EQ(engine_from_string("threads"), Engine::kThreads);
  EXPECT_THROW((void)engine_from_string("gpu"), Error);
}

TEST(Experiment, SimComparisonTracksModelOnRandomTopologies) {
  // Mini Figure 7: five random topologies, DES engine, errors must stay
  // within a few percent of the Alg. 1 prediction.
  Rng rng(4242);
  MeasureOptions options;
  options.sim_duration = 120.0;
  for (int i = 0; i < 5; ++i) {
    const Topology t = random_topology(rng);
    const Comparison cmp = compare_throughput(t, runtime::Deployment{}, options);
    EXPECT_GT(cmp.measured, 0.0);
    EXPECT_LT(cmp.error, 0.12) << "topology " << i << ": predicted " << cmp.predicted
                               << " measured " << cmp.measured;
  }
}

TEST(Experiment, ThreadsEngineMeasuresSmallTopology) {
  Topology::Builder b;
  b.add_operator("src", 2e-3);
  b.add_operator("slow", 6e-3);
  b.add_edge(0, 1);
  const Topology t = b.build();

  MeasureOptions options;
  options.engine = Engine::kThreads;
  options.real_duration = 1.2;
  const Comparison cmp = compare_throughput(t, runtime::Deployment{}, options);
  EXPECT_NEAR(cmp.predicted, 1000.0 / 6.0, 1e-6);
  EXPECT_LT(cmp.error, 0.15);
}

TEST(Experiment, MeasuredRatesCoverEveryOperator) {
  Rng rng(7);
  const Topology t = random_topology(rng);
  const Measured measured = measure(t, runtime::Deployment{}, {});
  EXPECT_EQ(measured.departure_rates.size(), t.num_operators());
  EXPECT_EQ(measured.arrival_rates.size(), t.num_operators());
  EXPECT_GT(measured.throughput, 0.0);
}

}  // namespace
}  // namespace ss::harness
