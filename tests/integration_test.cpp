// End-to-end integration tests of the full SpinStreams workflow across
// modules: profile -> annotate -> analyze -> optimize -> (simulate AND
// execute) -> codegen, plus model-vs-both-engines agreement on optimized
// random topologies (a miniature of the whole evaluation pipeline).
#include <gtest/gtest.h>

#include <chrono>

#include "core/bottleneck.hpp"
#include "core/codegen.hpp"
#include "core/fusion.hpp"
#include "core/latency.hpp"
#include "core/profile.hpp"
#include "gen/workload.hpp"
#include "harness/experiment.hpp"
#include "harness/profiler.hpp"
#include "ops/registry.hpp"
#include "runtime/engine.hpp"
#include "sim/des.hpp"
#include "xmlio/topology_xml.hpp"

namespace ss {
namespace {

TEST(Integration, ProfileAnnotateOptimizeSimulate) {
  // A pipeline of REAL operators whose declared service times are bogus;
  // the profiler must fix them and the optimizer then work off reality.
  Topology::Builder b;
  b.add_operator("src", 50e-6);
  OperatorSpec math;
  math.name = "score";
  math.impl = "map_math";
  math.service_time = 99.0;  // bogus: profiling will replace it
  b.add_operator(std::move(math));
  OperatorSpec cheap;
  cheap.name = "clamp";
  cheap.impl = "clamp";
  cheap.service_time = 99.0;
  b.add_operator(std::move(cheap));
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology declared = b.build();

  const ProfileData profile = harness::profile_topology(declared, 2000);
  Topology annotated = annotate_with_profile(declared, profile);
  EXPECT_LT(annotated.op(1).service_time, 1.0);
  EXPECT_LT(annotated.op(2).service_time, annotated.op(1).service_time);

  // The model and the simulator must agree on the annotated topology.
  const double predicted = steady_state(annotated).throughput();
  sim::SimOptions options;
  options.duration = 60.0;
  const sim::SimResult sim = sim::simulate(annotated, options);
  EXPECT_NEAR(sim.throughput, predicted, 0.08 * predicted);
}

TEST(Integration, XmlRoundTripPreservesAnalyses) {
  Rng rng(77);
  const Topology original = random_topology(rng);
  const Topology reloaded = xml::load_topology(xml::save_topology(original));
  const SteadyStateResult a = steady_state(original);
  const SteadyStateResult b = steady_state(reloaded);
  EXPECT_NEAR(a.throughput(), b.throughput(), 1e-6 * (1.0 + a.throughput()));
  const BottleneckResult fa = eliminate_bottlenecks(original);
  const BottleneckResult fb = eliminate_bottlenecks(reloaded);
  EXPECT_EQ(fa.total_replicas, fb.total_replicas);
}

class OptimizedAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizedAgreement, ModelTracksSimulatorAfterFission) {
  Rng rng(GetParam());
  const Topology t = random_topology(rng);
  const BottleneckResult result = eliminate_bottlenecks(t);

  runtime::Deployment deployment;
  deployment.replication = result.plan;
  deployment.partitions = result.partitions;
  harness::MeasureOptions options;
  options.sim_duration = 150.0;
  const harness::Comparison cmp = harness::compare_throughput(t, deployment, options);
  EXPECT_LT(cmp.error, 0.12) << "predicted " << cmp.predicted << " measured " << cmp.measured;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizedAgreement, ::testing::Values(11u, 22u, 33u, 44u));

TEST(Integration, ThreadedEngineMatchesModelOnOptimizedPipeline) {
  // Fission + fusion together on the real actor runtime.
  Topology::Builder b;
  b.add_operator("src", 2e-3);
  b.add_operator("heavy", 5e-3);   // needs 3 replicas at 500/s
  b.add_operator("tail_a", 0.3e-3);
  b.add_operator("tail_b", 0.4e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Topology t = b.build();

  const BottleneckResult fission = eliminate_bottlenecks(t);
  runtime::Deployment deployment;
  deployment.replication = fission.plan;
  deployment.fusions.push_back(FusionSpec{{2, 3}, "tail"});

  runtime::Engine engine(t, deployment, runtime::synthetic_factory(), {});
  const runtime::RunStats stats = engine.run_for(std::chrono::duration<double>(2.0));
  EXPECT_NEAR(stats.source_rate, 500.0, 0.12 * 500.0);
  EXPECT_EQ(stats.dropped, 0u);
  // Member counters stay per logical operator inside the fused actor.
  EXPECT_GT(stats.ops[2].processed, 0u);
  EXPECT_GT(stats.ops[3].processed, 0u);
}

TEST(Integration, CodegenReflectsOptimizedDeployment) {
  Rng rng(5);
  const Topology t = random_topology(rng);
  const BottleneckResult result = eliminate_bottlenecks(t);
  const std::string source = generate_runtime_source(t, result.plan, {});
  // The replica vector of the plan is embedded verbatim.
  std::string expected = "plan.replicas = {";
  expected += std::to_string(result.plan.replicas_of(0));
  EXPECT_NE(source.find(expected), std::string::npos) << expected;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_NE(source.find('"' + t.op(i).name + '"'), std::string::npos);
  }
}

TEST(Integration, LatencyDropsAfterFission) {
  Topology::Builder b;
  b.add_operator("src", 1.05e-3);  // rho of work just under saturation
  b.add_operator("work", 1e-3);
  b.add_edge(0, 1);
  Topology t = b.build();

  const SteadyStateResult before_rates = steady_state(t);
  const LatencyEstimate before = estimate_latency(t, before_rates);

  ReplicationPlan plan;
  plan.replicas = {1, 2};
  const SteadyStateResult after_rates = steady_state(t, plan);
  const LatencyEstimate after = estimate_latency(t, after_rates, plan);
  EXPECT_LT(after.end_to_end, before.end_to_end);
}

}  // namespace
}  // namespace ss
