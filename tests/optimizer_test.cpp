// Tests of the tool facade (Optimizer), the profile-annotation module, the
// code generator, and the harness profiler — the §4 workflow pieces.
#include <gtest/gtest.h>

#include "core/codegen.hpp"
#include "core/error.hpp"
#include "core/optimizer.hpp"
#include "core/profile.hpp"
#include "harness/profiler.hpp"
#include "ops/stateless.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

Topology bottleneck_pipeline() {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 2.5 * kMs);
  b.add_operator("tail_a", 0.2 * kMs);
  b.add_operator("tail_b", 0.3 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

// ---------------------------------------------------------------- Optimizer

TEST(Optimizer, KeepsVersionHistory) {
  Optimizer tool(bottleneck_pipeline(), "v0");
  EXPECT_EQ(tool.versions().size(), 1u);
  EXPECT_EQ(tool.current().label, "v0");

  const BottleneckResult fission = tool.eliminate_bottlenecks();
  EXPECT_EQ(tool.versions().size(), 2u);
  EXPECT_EQ(tool.current().label, "v0+fission");
  EXPECT_EQ(tool.current().plan.replicas_of(1), fission.plan.replicas_of(1));
  EXPECT_EQ(fission.plan.replicas_of(1), 3);
}

TEST(Optimizer, AnalyzeUsesCurrentPlan) {
  Optimizer tool(bottleneck_pipeline());
  EXPECT_NEAR(tool.analyze().throughput(), 400.0, 1e-6);
  tool.eliminate_bottlenecks();
  EXPECT_NEAR(tool.analyze().throughput(), 1000.0, 1e-6);
}

TEST(Optimizer, TryFusionCommitsSafeFusions) {
  Optimizer tool(bottleneck_pipeline());
  const FusionResult result = tool.try_fusion(FusionSpec{{2, 3}, "tail"});
  EXPECT_FALSE(result.introduces_bottleneck);
  EXPECT_EQ(tool.versions().size(), 2u);
  EXPECT_TRUE(tool.current().topology.find("tail").has_value());
}

TEST(Optimizer, TryFusionRejectsHarmfulFusionsUnlessForced) {
  // Fusing the busy operator with the tail creates a bottleneck.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("busy", 0.9 * kMs);
  b.add_operator("busy2", 0.8 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Optimizer tool(b.build());
  const FusionResult result = tool.try_fusion(FusionSpec{{1, 2}, "merged"});
  EXPECT_TRUE(result.introduces_bottleneck);
  EXPECT_EQ(tool.versions().size(), 1u);  // not committed: the tool alerted

  const FusionResult forced = tool.try_fusion(FusionSpec{{1, 2}, "merged"}, /*force=*/true);
  EXPECT_TRUE(forced.introduces_bottleneck);
  EXPECT_EQ(tool.versions().size(), 2u);
}

TEST(Optimizer, ReportContainsOperatorsAndThroughput) {
  Optimizer tool(bottleneck_pipeline());
  const std::string report = tool.report();
  EXPECT_NE(report.find("slow"), std::string::npos);
  EXPECT_NE(report.find("bottleneck"), std::string::npos);
  EXPECT_NE(report.find("predicted throughput"), std::string::npos);
}

// ------------------------------------------------------------ ProfileData

TEST(Profile, AnnotationReplacesServiceTimesAndSelectivity) {
  Topology t = bottleneck_pipeline();
  ProfileData profile;
  profile.operators["slow"].service_time = 5.0 * kMs;
  profile.operators["tail_a"].selectivity = Selectivity{2.0, 1.0};
  profile.operators["tail_a"].has_selectivity = true;
  Topology annotated = annotate_with_profile(t, profile);
  EXPECT_DOUBLE_EQ(annotated.op(1).service_time, 5.0 * kMs);
  EXPECT_DOUBLE_EQ(annotated.op(2).selectivity.input, 2.0);
  // Untouched operators keep their values.
  EXPECT_DOUBLE_EQ(annotated.op(0).service_time, 1.0 * kMs);
}

TEST(Profile, EdgeCountsRederiveProbabilities) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 1.0 * kMs);
  b.add_operator("b", 1.0 * kMs);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.5);
  Topology t = b.build();

  ProfileData profile;
  profile.edge_counts[{"src", "a"}] = 900.0;
  profile.edge_counts[{"src", "b"}] = 100.0;
  Topology annotated = annotate_with_profile(t, profile);
  EXPECT_NEAR(annotated.edge_probability(0, 1), 0.9, 1e-12);
  EXPECT_NEAR(annotated.edge_probability(0, 2), 0.1, 1e-12);
}

TEST(Profile, PartialEdgeCountsLeaveFanOutUntouched) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 1.0 * kMs);
  b.add_operator("b", 1.0 * kMs);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.5);
  Topology t = b.build();
  ProfileData profile;
  profile.edge_counts[{"src", "a"}] = 900.0;  // only one edge measured
  Topology annotated = annotate_with_profile(t, profile);
  EXPECT_NEAR(annotated.edge_probability(0, 1), 0.5, 1e-12);
}

TEST(Profile, RejectsUnknownNames) {
  Topology t = bottleneck_pipeline();
  ProfileData profile;
  profile.operators["ghost"].service_time = 1.0;
  EXPECT_THROW((void)annotate_with_profile(t, profile), Error);

  ProfileData edges;
  edges.edge_counts[{"src", "tail_b"}] = 1.0;  // no such edge
  EXPECT_THROW((void)annotate_with_profile(t, edges), Error);
}

// ---------------------------------------------------------------- Profiler

TEST(Profiler, MeasuresLogicServiceTimeAndSelectivity) {
  ops::FlatMapExpand expand(3);
  const harness::LogicProfile profile = harness::profile_logic(expand, 2000);
  EXPECT_GT(profile.seconds_per_item, 0.0);
  EXPECT_LT(profile.seconds_per_item, 1e-4);  // cheap operator
  EXPECT_NEAR(profile.outputs_per_input, 3.0, 1e-9);
}

TEST(Profiler, TopologyProfileFeedsAnnotation) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  OperatorSpec spec;
  spec.name = "expander";
  spec.impl = "flatmap_expand";
  spec.service_time = 123.0;  // bogus value the profile must replace
  spec.selectivity = Selectivity{1.0, 2.0};
  b.add_operator(std::move(spec));
  b.add_edge(0, 1);
  Topology t = b.build();

  const ProfileData profile = harness::profile_topology(t, 500);
  ASSERT_EQ(profile.operators.count("expander"), 1u);
  Topology annotated = annotate_with_profile(t, profile);
  EXPECT_LT(annotated.op(1).service_time, 1.0);  // measured, not 123 s
  EXPECT_NEAR(annotated.op(1).selectivity.output, 2.0, 0.1);
}

// ----------------------------------------------------------------- Codegen

TEST(Codegen, EmitsCompleteProgram) {
  Topology t = bottleneck_pipeline();
  ReplicationPlan plan;
  plan.replicas = {1, 3, 1, 1};
  CodegenOptions options;
  options.app_name = "unit_test_app";
  options.run_seconds = 1.5;
  const std::string source =
      generate_runtime_source(t, plan, {FusionSpec{{2, 3}, "tail"}}, options);

  // Structural checks: the program exercises the full public API.
  EXPECT_NE(source.find("int main()"), std::string::npos);
  EXPECT_NE(source.find("unit_test_app"), std::string::npos);
  EXPECT_NE(source.find("ss::Topology::Builder"), std::string::npos);
  EXPECT_NE(source.find("plan.replicas = {1, 3, 1, 1}"), std::string::npos);
  EXPECT_NE(source.find("deployment.fusions.push_back"), std::string::npos);
  EXPECT_NE(source.find("\"tail\""), std::string::npos);
  EXPECT_NE(source.find("ss::runtime::Engine engine"), std::string::npos);
  EXPECT_NE(source.find("run_for"), std::string::npos);
  // Every operator name appears.
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_NE(source.find('"' + t.op(i).name + '"'), std::string::npos);
  }
  // Every edge appears with its probability.
  EXPECT_NE(source.find("b.add_edge(0, 1, 1);"), std::string::npos);
}

TEST(Codegen, EscapesQuotesInNames) {
  Topology::Builder b;
  b.add_operator("sr\"c", 1.0 * kMs);
  b.add_operator("next", 1.0 * kMs);
  b.add_edge(0, 1);
  const std::string source = generate_runtime_source(b.build(), {}, {});
  EXPECT_NE(source.find("sr\\\"c"), std::string::npos);
}

TEST(Codegen, SerializesKeyDistributions) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  OperatorSpec spec;
  spec.name = "agg";
  spec.service_time = 1.0 * kMs;
  spec.state = StateKind::kPartitionedStateful;
  spec.keys = KeyDistribution({0.5, 0.5});
  b.add_operator(std::move(spec));
  b.add_edge(0, 1);
  const std::string source = generate_runtime_source(b.build(), {}, {});
  EXPECT_NE(source.find("ss::KeyDistribution({0.5, 0.5})"), std::string::npos);
  EXPECT_NE(source.find("kPartitionedStateful"), std::string::npos);
}

}  // namespace
}  // namespace ss
