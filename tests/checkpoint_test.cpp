// Tests of the checkpoint codec, the directory manager (atomic writes,
// retention, recovery scan) and the fault-injection seam: corrupt or torn
// files must never poison recovery — load_latest() falls back to the newest
// checkpoint that still passes framing + CRC + decode.
#include "runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.hpp"

namespace ss::runtime {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory (parallel ctest runs each test in its own
/// process, but a stale dir from a previous run would skew retention and
/// sequence-continuation assertions).
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/ckpt_" + info->name();
    fs::remove_all(dir_);
    FaultInjector::instance().reset();
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    // Keep the directory on failure: CI uploads /tmp/ckpt_* as artifacts.
    if (!HasFailure()) fs::remove_all(dir_);
  }

  std::string dir_;
};

Checkpoint rich_checkpoint() {
  Checkpoint cp;
  cp.sequence = 7;
  cp.epoch = 3;
  cp.tenant = "tenant-a";  // multi-tenant runs tag per-tenant subdirectories
  cp.deployment.replication.replicas = {1, 3, 1, 2};
  cp.deployment.replication.max_share = {1.0, 0.4, 1.0, 0.55};
  KeyPartition part;
  part.replica_of_key = {0, 1, 2, 0, 1};
  part.replicas = 3;
  part.max_share = 0.4;
  cp.deployment.partitions = {KeyPartition{}, part};
  FusionSpec fusion;
  fusion.members = {2, 3};
  fusion.fused_name = "F(tail)";
  cp.deployment.fusions = {fusion};
  cp.sources = {{0, 123456}};

  CheckpointActorEntry source;
  source.op = 0;
  source.role = CheckpointRole::kSource;
  source.rng = {1, 2, 3, 4};
  cp.actors.push_back(source);

  CheckpointActorEntry emitter;
  emitter.op = 1;
  emitter.role = CheckpointRole::kEmitter;
  emitter.rng = {0x1111, 0x2222, 0x3333, 0x4444};
  emitter.rr_cursor = 2;
  cp.actors.push_back(emitter);

  // A replica with a large keyed-state blob (binary-safe: embedded NULs).
  CheckpointActorEntry replica;
  replica.op = 1;
  replica.role = CheckpointRole::kReplica;
  replica.replica = 1;
  replica.has_state = true;
  replica.state.reserve(64 * 1024);
  for (int i = 0; i < 64 * 1024; ++i) {
    replica.state.push_back(static_cast<char>(i * 31 % 256));
  }
  cp.actors.push_back(replica);

  // A fused member's logic blob rides as a separate kMember entry.
  CheckpointActorEntry member;
  member.op = 3;
  member.role = CheckpointRole::kMember;
  member.replica = 0;
  member.has_state = true;
  member.state = std::string("\x00\x01state\xff", 8);
  cp.actors.push_back(member);
  return cp;
}

void expect_equal(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.deployment.replication.replicas, b.deployment.replication.replicas);
  EXPECT_EQ(a.deployment.replication.max_share, b.deployment.replication.max_share);
  ASSERT_EQ(a.deployment.partitions.size(), b.deployment.partitions.size());
  for (std::size_t i = 0; i < a.deployment.partitions.size(); ++i) {
    EXPECT_EQ(a.deployment.partitions[i].replica_of_key,
              b.deployment.partitions[i].replica_of_key);
    EXPECT_EQ(a.deployment.partitions[i].replicas, b.deployment.partitions[i].replicas);
    EXPECT_EQ(a.deployment.partitions[i].max_share, b.deployment.partitions[i].max_share);
  }
  ASSERT_EQ(a.deployment.fusions.size(), b.deployment.fusions.size());
  for (std::size_t i = 0; i < a.deployment.fusions.size(); ++i) {
    EXPECT_EQ(a.deployment.fusions[i].members, b.deployment.fusions[i].members);
    EXPECT_EQ(a.deployment.fusions[i].fused_name, b.deployment.fusions[i].fused_name);
  }
  ASSERT_EQ(a.sources.size(), b.sources.size());
  for (std::size_t i = 0; i < a.sources.size(); ++i) {
    EXPECT_EQ(a.sources[i].op, b.sources[i].op);
    EXPECT_EQ(a.sources[i].offset, b.sources[i].offset);
  }
  ASSERT_EQ(a.actors.size(), b.actors.size());
  for (std::size_t i = 0; i < a.actors.size(); ++i) {
    EXPECT_EQ(a.actors[i].op, b.actors[i].op);
    EXPECT_EQ(a.actors[i].role, b.actors[i].role);
    EXPECT_EQ(a.actors[i].replica, b.actors[i].replica);
    EXPECT_EQ(a.actors[i].rng, b.actors[i].rng);
    EXPECT_EQ(a.actors[i].rr_cursor, b.actors[i].rr_cursor);
    EXPECT_EQ(a.actors[i].has_state, b.actors[i].has_state);
    EXPECT_EQ(a.actors[i].state, b.actors[i].state);
  }
}

std::size_t count_periodic(const CheckpointManager& mgr) {
  std::size_t n = 0;
  for (const auto& path : mgr.list()) {
    if (fs::path(path).filename().string() != "final.bin") ++n;
  }
  return n;
}

// --- codec -----------------------------------------------------------------

TEST_F(CheckpointTest, CodecRoundTripsEmptyCheckpoint) {
  const Checkpoint cp;  // zero actors, zero sources, empty deployment
  Checkpoint back;
  ASSERT_TRUE(decode_checkpoint(encode_checkpoint(cp), back));
  expect_equal(cp, back);
  ASSERT_TRUE(parse_checkpoint_file(checkpoint_file_bytes(cp), back));
  expect_equal(cp, back);
}

TEST_F(CheckpointTest, CodecRoundTripsRichCheckpoint) {
  const Checkpoint cp = rich_checkpoint();
  Checkpoint back;
  ASSERT_TRUE(decode_checkpoint(encode_checkpoint(cp), back));
  expect_equal(cp, back);
  ASSERT_TRUE(parse_checkpoint_file(checkpoint_file_bytes(cp), back));
  expect_equal(cp, back);
}

TEST_F(CheckpointTest, DecodeRejectsTruncationAtEveryLength) {
  const std::string payload = encode_checkpoint(rich_checkpoint());
  Checkpoint out;
  // Chop at a spread of points including the large state blob's middle.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                          payload.size() / 2, payload.size() - 1}) {
    EXPECT_FALSE(decode_checkpoint(std::string_view(payload).substr(0, cut), out))
        << "cut=" << cut;
  }
  EXPECT_FALSE(decode_checkpoint(payload + "garbage", out));  // trailing bytes
}

TEST_F(CheckpointTest, ParseRejectsBadMagicVersionAndCrc) {
  std::string bytes = checkpoint_file_bytes(rich_checkpoint());
  Checkpoint out;
  ASSERT_TRUE(parse_checkpoint_file(bytes, out));

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(parse_checkpoint_file(bad_magic, out));

  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0x7f);
  EXPECT_FALSE(parse_checkpoint_file(bad_version, out));

  std::string bit_flip = bytes;
  bit_flip[bytes.size() / 2] ^= 0x01;  // payload corruption: CRC must catch it
  EXPECT_FALSE(parse_checkpoint_file(bit_flip, out));

  EXPECT_FALSE(parse_checkpoint_file(std::string_view(bytes).substr(0, bytes.size() - 3), out));
  EXPECT_FALSE(parse_checkpoint_file(bytes + "x", out));
}

TEST_F(CheckpointTest, Crc32MatchesKnownVector) {
  // The standard check value of reflected CRC-32/ISO-HDLC.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

// --- manager ---------------------------------------------------------------

TEST_F(CheckpointTest, ManagerWritesLoadsAndRetainsLastK) {
  CheckpointManager mgr(dir_, /*retain=*/3);
  for (int i = 1; i <= 5; ++i) {
    Checkpoint cp = rich_checkpoint();
    cp.epoch = static_cast<std::uint64_t>(i);
    mgr.write(cp);
    EXPECT_EQ(cp.sequence, static_cast<std::uint64_t>(i));  // write() stamps it
  }
  EXPECT_EQ(count_periodic(mgr), 3u);  // 1 and 2 pruned
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "ckpt-00000001.bin"));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "ckpt-00000005.bin"));

  Checkpoint latest;
  ASSERT_TRUE(mgr.load_latest(latest));
  EXPECT_EQ(latest.sequence, 5u);
  EXPECT_EQ(latest.epoch, 5u);
  Checkpoint expected = rich_checkpoint();
  expected.sequence = 5;
  expected.epoch = 5;
  expect_equal(expected, latest);
}

TEST_F(CheckpointTest, SequenceContinuesAcrossManagerInstances) {
  {
    CheckpointManager mgr(dir_);
    Checkpoint cp;
    mgr.write(cp);
    mgr.write(cp);
  }
  // A recovered run opens the same directory: it must never clobber the
  // snapshot it was just restored from.
  CheckpointManager again(dir_);
  EXPECT_EQ(again.next_sequence(), 3u);
  Checkpoint cp;
  again.write(cp);
  EXPECT_EQ(cp.sequence, 3u);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "ckpt-00000003.bin"));
}

TEST_F(CheckpointTest, LoadLatestSkipsCorruptAndTruncatedFiles) {
  CheckpointManager mgr(dir_);
  Checkpoint cp;
  cp.epoch = 1;
  mgr.write(cp);
  cp.epoch = 2;
  const std::string newest = mgr.write(cp);

  // Flip a payload bit in the newest file: CRC fails, fall back to seq 1.
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put(static_cast<char>(0xff));
  }
  Checkpoint out;
  ASSERT_TRUE(mgr.load_latest(out));
  EXPECT_EQ(out.sequence, 1u);
  EXPECT_EQ(out.epoch, 1u);

  // Truncate the survivor too: nothing valid remains.
  fs::resize_file(fs::path(dir_) / "ckpt-00000001.bin", 10);
  EXPECT_FALSE(mgr.load_latest(out));
}

TEST_F(CheckpointTest, FinalCheckpointOutranksPeriodicAndSurvivesRotation) {
  CheckpointManager mgr(dir_, /*retain=*/2);
  Checkpoint cp;
  cp.epoch = 4;
  mgr.write_final(cp);  // sequence 1
  for (int i = 0; i < 4; ++i) {
    Checkpoint periodic;
    mgr.write(periodic);
  }
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "final.bin"));  // outside rotation
  EXPECT_EQ(count_periodic(mgr), 2u);

  Checkpoint again;
  again.epoch = 9;
  mgr.write_final(again);  // sequence 6: newest overall
  Checkpoint out;
  ASSERT_TRUE(mgr.load_latest(out));
  EXPECT_EQ(out.sequence, 6u);
  EXPECT_EQ(out.epoch, 9u);
}

TEST_F(CheckpointTest, ConstructorRejectsUnwritableDirectory) {
  // A plain file where the directory should be: create_directories fails.
  const std::string blocker = dir_ + "-file";
  std::ofstream(blocker) << "not a directory";
  EXPECT_THROW(CheckpointManager{blocker}, Error);
  fs::remove(blocker);
}

// --- fault injection -------------------------------------------------------

TEST_F(CheckpointTest, InjectedWriteFailureThrowsAndLeavesNoFile) {
  CheckpointManager mgr(dir_);
  FaultInjector::instance().fail_write_on(2);
  Checkpoint cp;
  mgr.write(cp);  // 1st write unaffected
  EXPECT_THROW(mgr.write(cp), Error);
  // The failed write left nothing behind — neither final nor tmp file.
  EXPECT_EQ(count_periodic(mgr), 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "ckpt-00000002.bin.tmp"));
  // Disarmed after firing: the next write goes through.
  mgr.write(cp);
  EXPECT_EQ(count_periodic(mgr), 2u);
}

TEST_F(CheckpointTest, InjectedTornWriteIsSkippedByRecoveryScan) {
  CheckpointManager mgr(dir_);
  Checkpoint cp;
  cp.epoch = 1;
  mgr.write(cp);
  FaultInjector::instance().tear_write_on(1);
  cp.epoch = 2;
  mgr.write(cp);  // lands under its final name, but truncated mid-payload
  Checkpoint out;
  ASSERT_TRUE(mgr.load_latest(out));
  EXPECT_EQ(out.epoch, 1u);  // the torn snapshot only loses itself
}

TEST_F(CheckpointTest, FinalWriteIsNotInjectable) {
  CheckpointManager mgr(dir_);
  FaultInjector::instance().fail_write_on(1);
  Checkpoint cp;
  cp.epoch = 5;
  mgr.write_final(cp);  // injector targets the periodic path only
  Checkpoint out;
  ASSERT_TRUE(mgr.load_latest(out));
  EXPECT_EQ(out.epoch, 5u);
  // The armed failure is still pending and hits the next periodic write.
  EXPECT_THROW(mgr.write(cp), Error);
}

}  // namespace
}  // namespace ss::runtime
