// Units of the joint allocator (core/joint.hpp): the global replica budget
// split across tenant workloads by water-filling — slack grants every
// desire, a binding budget goes to the highest weighted marginal gain,
// SLO-breached tenants outrank throughput seekers, and the final per-tenant
// deployments respect the granted shares exactly.
#include "core/joint.hpp"

#include <gtest/gtest.h>

#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {
namespace {

/// src at 1000/s, heavy stage at ~278/s: Alg. 2 wants four replicas of
/// "heavy" (6 total replicas for the 3 operators).
Topology under_provisioned() {
  Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  b.add_operator("heavy", 3.6e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

/// Fully provisioned: every stage keeps up sequentially, desire = 3.
Topology balanced() {
  Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  b.add_operator("light", 0.2e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TenantWorkload workload(Topology t, double weight = 1.0, double slo_p99 = 0.0) {
  TenantWorkload w;
  w.topology = std::move(t);
  w.options.enable_fusion = false;
  w.options.slo_p99 = slo_p99;
  w.weight = weight;
  return w;
}

int granted_of(const TenantAllocation& a, const TenantWorkload& w) {
  return a.result.plan.total_replicas(w.topology.num_operators());
}

TEST(Joint, NoBudgetGrantsEveryDesire) {
  std::vector<TenantWorkload> ws;
  ws.push_back(workload(under_provisioned()));
  ws.push_back(workload(balanced()));
  const JointResult r = optimize_joint(ws);
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_FALSE(r.budget_binding);
  EXPECT_EQ(r.total_granted, r.total_desired);
  for (std::size_t i = 0; i < ws.size(); ++i) {
    EXPECT_EQ(r.tenants[i].granted_replicas, r.tenants[i].desired_replicas);
  }
  // The hungry tenant's desire replicates the heavy stage past rho = 1.
  EXPECT_GE(r.tenants[0].desired_replicas, 6);
  EXPECT_EQ(r.tenants[1].desired_replicas, 3);
}

TEST(Joint, SlackBudgetEqualsUnbounded) {
  std::vector<TenantWorkload> ws;
  ws.push_back(workload(under_provisioned()));
  ws.push_back(workload(balanced()));
  const JointResult unbounded = optimize_joint(ws);
  JointOptions options;
  options.replica_budget = unbounded.total_desired + 5;
  const JointResult r = optimize_joint(ws, options);
  EXPECT_FALSE(r.budget_binding);
  EXPECT_EQ(r.total_granted, unbounded.total_granted);
}

TEST(Joint, BindingBudgetIsRespectedExactly) {
  std::vector<TenantWorkload> ws;
  ws.push_back(workload(under_provisioned()));
  ws.push_back(workload(under_provisioned()));
  JointOptions options;
  options.replica_budget = 8;  // each tenant alone wants >= 6
  const JointResult r = optimize_joint(ws, options);
  EXPECT_TRUE(r.budget_binding);
  EXPECT_LE(r.total_granted, options.replica_budget);
  // Nobody is starved below the sequential floor.
  for (std::size_t i = 0; i < ws.size(); ++i) {
    EXPECT_GE(r.tenants[i].granted_replicas, 3);
    EXPECT_LE(r.tenants[i].granted_replicas, r.tenants[i].desired_replicas);
    // The exact solve honored the share: the deployed plan never exceeds it.
    EXPECT_EQ(granted_of(r.tenants[i], ws[i]), r.tenants[i].granted_replicas);
  }
  EXPECT_EQ(r.total_desired, 2 * r.tenants[0].desired_replicas);
}

TEST(Joint, WeightTiltsTheWaterFilling) {
  // Two identical hungry tenants, one three times as important: under a
  // budget that cannot satisfy both, the heavier tenant gets at least as
  // many replicas and strictly more of the contested surplus.
  std::vector<TenantWorkload> ws;
  ws.push_back(workload(under_provisioned(), 3.0));
  ws.push_back(workload(under_provisioned(), 1.0));
  JointOptions options;
  options.replica_budget = 9;  // floors 3 + 3, surplus of 3 contested
  const JointResult r = optimize_joint(ws, options);
  EXPECT_TRUE(r.budget_binding);
  EXPECT_GT(r.tenants[0].granted_replicas, r.tenants[1].granted_replicas);
}

TEST(Joint, BreachedTenantOutranksThroughputSeeker) {
  // Tenant 0 carries an SLO its sequential deployment cannot meet (the
  // heavy stage's standing queue); tenant 1 only chases throughput.  Under
  // a budget with a single contested replica, the breached tenant wins it
  // even though the other tenant's marginal throughput gain is positive.
  std::vector<TenantWorkload> ws;
  ws.push_back(workload(under_provisioned(), 1.0, /*slo_p99=*/0.010));
  ws.push_back(workload(under_provisioned(), 1.0));
  JointOptions options;
  options.replica_budget = 7;  // floors 3 + 3, one replica contested
  const JointResult r = optimize_joint(ws, options);
  EXPECT_TRUE(r.budget_binding);
  EXPECT_EQ(r.tenants[0].granted_replicas, 4);
  EXPECT_EQ(r.tenants[1].granted_replicas, 3);
}

TEST(Joint, GrantedShareImprovesPredictedThroughput) {
  // Sanity of the marginal-gain machinery: granting the hungry tenant more
  // of the budget must monotonically raise its predicted throughput up to
  // its desire.
  std::vector<TenantWorkload> ws;
  ws.push_back(workload(under_provisioned()));
  ws.push_back(workload(balanced()));
  double last = 0.0;
  for (int budget = 6; budget <= 9; ++budget) {
    JointOptions options;
    options.replica_budget = budget;
    const JointResult r = optimize_joint(ws, options);
    EXPECT_GE(r.tenants[0].predicted_throughput, last - 1e-9) << "budget " << budget;
    last = r.tenants[0].predicted_throughput;
  }
  EXPECT_GT(last, optimize_joint(ws, JointOptions{6}).tenants[0].predicted_throughput);
}

TEST(Joint, EmptyWorkloadListIsANoop) {
  const JointResult r = optimize_joint({});
  EXPECT_TRUE(r.tenants.empty());
  EXPECT_EQ(r.total_desired, 0);
  EXPECT_EQ(r.total_granted, 0);
  EXPECT_FALSE(r.budget_binding);
}

}  // namespace
}  // namespace ss
