// Failure-injection tests: operator logic that throws, sources that throw,
// and engine behaviour under very small buffers and timeouts — no exception
// may cross a thread boundary, runs must drain, and the error must surface
// on the caller's thread.
#include <gtest/gtest.h>

#include <chrono>

#include "core/error.hpp"
#include "runtime/engine.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

class ThrowingLogic final : public OperatorLogic {
 public:
  explicit ThrowingLogic(std::int64_t after) : after_(after) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (item.id >= after_) throw Error("synthetic operator failure");
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<ThrowingLogic>(after_);
  }

 private:
  std::int64_t after_;
};

class CountingSource final : public SourceLogic {
 public:
  explicit CountingSource(std::int64_t n, bool throw_at_end = false)
      : n_(n), throw_at_end_(throw_at_end) {}
  bool next(Tuple& out) override {
    if (i_ >= n_) {
      if (throw_at_end_) throw Error("source failure");
      return false;
    }
    out = Tuple{};
    out.id = i_++;
    return true;
  }

 private:
  std::int64_t n_;
  bool throw_at_end_;
  std::int64_t i_ = 0;
};

Topology pipeline3() {
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("mid", 1e-6);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(FaultInjection, OperatorExceptionSurfacesOnCallerThread) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(100000);
  };
  factory.logic = [](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ThrowingLogic>(500);
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Engine engine(pipeline3(), Deployment{}, factory, {});
  try {
    (void)engine.run_until_complete(duration<double>(20.0));
    FAIL() << "expected ss::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("mid"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("synthetic operator failure"), std::string::npos);
  }
}

TEST(FaultInjection, SourceExceptionSurfaces) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(100, /*throw_at_end=*/true);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Engine engine(pipeline3(), Deployment{}, factory, {});
  EXPECT_THROW((void)engine.run_until_complete(duration<double>(20.0)), Error);
}

TEST(FaultInjection, ReplicaExceptionAlsoDrains) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(50000);
  };
  factory.logic = [](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ThrowingLogic>(100);
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Deployment d;
  d.replication.replicas = {1, 3, 1};
  Engine engine(pipeline3(), d, factory, {});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)engine.run_until_complete(duration<double>(20.0)), Error);
  // The run must not hang anywhere near the 20 s watchdog.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
            15.0);
}

TEST(FaultInjection, TinyBuffersAndTimeoutsStillDrain) {
  // Capacity-1 mailboxes with a very short send timeout: heavy drops, but
  // the topology must still run, measure, and drain cleanly.
  Topology::Builder b;
  b.add_operator("src", 0.2e-3);
  b.add_operator("slow", 2e-3);
  b.add_edge(0, 1);
  EngineConfig config;
  config.mailbox_capacity = 1;
  config.send_timeout = duration<double>(0.001);
  Engine engine(b.build(), Deployment{}, synthetic_factory(), config);
  const RunStats stats = engine.run_for(duration<double>(0.8));
  EXPECT_GT(stats.dropped, 0u);             // the short timeout really dropped items
  EXPECT_GT(stats.ops[1].processed, 0u);    // but the consumer kept working
}

TEST(FaultInjection, EngineSurvivesImmediateSourceEnd) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(0);  // empty stream
  };
  factory.logic = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Engine engine(pipeline3(), Deployment{}, factory, {});
  const RunStats stats = engine.run_until_complete(duration<double>(10.0));
  EXPECT_EQ(stats.ops[0].processed, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

}  // namespace
}  // namespace ss::runtime
