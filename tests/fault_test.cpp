// Failure-injection tests: operator logic that throws, sources that throw,
// and engine behaviour under very small buffers and timeouts — no exception
// may cross a thread boundary, runs must drain, and the error must surface
// on the caller's thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "core/error.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/engine.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

class ThrowingLogic final : public OperatorLogic {
 public:
  explicit ThrowingLogic(std::int64_t after) : after_(after) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (item.id >= after_) throw Error("synthetic operator failure");
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<ThrowingLogic>(after_);
  }

 private:
  std::int64_t after_;
};

class CountingSource final : public SourceLogic {
 public:
  explicit CountingSource(std::int64_t n, bool throw_at_end = false)
      : n_(n), throw_at_end_(throw_at_end) {}
  bool next(Tuple& out) override {
    if (i_ >= n_) {
      if (throw_at_end_) throw Error("source failure");
      return false;
    }
    out = Tuple{};
    out.id = i_++;
    return true;
  }

 private:
  std::int64_t n_;
  bool throw_at_end_;
  std::int64_t i_ = 0;
};

Topology pipeline3() {
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("mid", 1e-6);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(FaultInjection, OperatorExceptionSurfacesOnCallerThread) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(100000);
  };
  factory.logic = [](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ThrowingLogic>(500);
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Engine engine(pipeline3(), Deployment{}, factory, {});
  try {
    (void)engine.run_until_complete(duration<double>(20.0));
    FAIL() << "expected ss::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("mid"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("synthetic operator failure"), std::string::npos);
  }
}

TEST(FaultInjection, SourceExceptionSurfaces) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(100, /*throw_at_end=*/true);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Engine engine(pipeline3(), Deployment{}, factory, {});
  EXPECT_THROW((void)engine.run_until_complete(duration<double>(20.0)), Error);
}

TEST(FaultInjection, ReplicaExceptionAlsoDrains) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(50000);
  };
  factory.logic = [](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ThrowingLogic>(100);
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Deployment d;
  d.replication.replicas = {1, 3, 1};
  Engine engine(pipeline3(), d, factory, {});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)engine.run_until_complete(duration<double>(20.0)), Error);
  // The run must not hang anywhere near the 20 s watchdog.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
            15.0);
}

TEST(FaultInjection, TinyBuffersAndTimeoutsStillDrain) {
  // Capacity-1 mailboxes with a very short send timeout: heavy drops, but
  // the topology must still run, measure, and drain cleanly.
  Topology::Builder b;
  b.add_operator("src", 0.2e-3);
  b.add_operator("slow", 2e-3);
  b.add_edge(0, 1);
  EngineConfig config;
  config.mailbox_capacity = 1;
  config.send_timeout = duration<double>(0.001);
  Engine engine(b.build(), Deployment{}, synthetic_factory(), config);
  const RunStats stats = engine.run_for(duration<double>(0.8));
  EXPECT_GT(stats.dropped, 0u);             // the short timeout really dropped items
  EXPECT_GT(stats.ops[1].processed, 0u);    // but the consumer kept working
}

// ---------------------------------------------------------------------------
// Checkpoint write failures (runtime/checkpoint.hpp fault seam).

std::atomic<std::int64_t> g_generated{0};
std::atomic<std::int64_t> g_sunk{0};

/// Wall-clock paced source so the periodic checkpointer gets a chance to
/// fire mid-stream; counts what it hands to the engine.
class PacedCountingSource final : public SourceLogic {
 public:
  explicit PacedCountingSource(std::int64_t n) : n_(n) {}
  bool next(Tuple& out) override {
    if (i_ >= n_) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    out = Tuple{};
    out.id = i_++;
    g_generated.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  std::int64_t n_;
  std::int64_t i_ = 0;
};

class CountingSink final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    g_sunk.fetch_add(1, std::memory_order_relaxed);
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<CountingSink>();
  }
};

class CheckpointFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/ckpt_fault_" + info->name();
    std::filesystem::remove_all(dir_);
    FaultInjector::instance().reset();
    g_generated.store(0);
    g_sunk.store(0);
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    std::filesystem::remove_all(dir_);
  }

  Engine make_engine(std::int64_t items, double period) {
    AppFactory factory;
    factory.source = [items](OpIndex, const OperatorSpec&) {
      return std::make_unique<PacedCountingSource>(items);
    };
    factory.logic = [](OpIndex, const OperatorSpec&) {
      return std::make_unique<CountingSink>();
    };
    EngineConfig config;
    config.checkpoint_dir = dir_;
    config.checkpoint_period = period;
    return Engine(pipeline3(), Deployment{}, factory, config);
  }

  std::string dir_;
};

TEST_F(CheckpointFaultTest, SnapshotWriteFailureSurfacesWithoutStallingOrLosingTuples) {
  // The first periodic snapshot throws.  The fence must still complete and
  // the pipeline drain — the failure stops the run early and surfaces on
  // the caller's thread (same contract as ThrowingLogic), never as a hang.
  FaultInjector::instance().fail_write_on(1);
  Engine engine = make_engine(1'000'000, /*period=*/0.05);
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)engine.run_until_complete(duration<double>(60.0));
    FAIL() << "expected ss::Error from the failed snapshot write";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint"), std::string::npos) << e.what();
  }
  // Far below the watchdog: the failed write aborted the run, no stall.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
            30.0);
  EXPECT_EQ(engine.checkpoints_written(), 0u);
  // Nothing generated before the failure was lost: every tuple the source
  // handed over was drained through to the sink (both stages process it).
  EXPECT_EQ(g_sunk.load(), 2 * g_generated.load());
}

TEST_F(CheckpointFaultTest, TornSnapshotDoesNotFailTheRunAndIsSkippedOnLoad) {
  // A torn write is invisible at run time (the file lands truncated, as
  // after a power loss) — the run completes, and only the recovery scan
  // discards the damaged snapshot.
  FaultInjector::instance().tear_write_on(1);
  Engine engine = make_engine(3000, /*period=*/0.06);
  const RunStats stats = engine.run_until_complete(duration<double>(60.0));
  EXPECT_GE(stats.checkpoints_written, 1u);
  EXPECT_EQ(stats.ops[0].processed, 3000u);

  Checkpoint torn;
  EXPECT_FALSE(CheckpointManager::read_file(dir_ + "/ckpt-00000001.bin", torn));
  CheckpointManager mgr(dir_);
  Checkpoint latest;
  ASSERT_TRUE(mgr.load_latest(latest));  // final.bin (and later snapshots) survive
  EXPECT_GT(latest.sequence, 1u);
}

TEST(FaultInjection, EngineSurvivesImmediateSourceEnd) {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<CountingSource>(0);  // empty stream
  };
  factory.logic = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<ThrowingLogic>(1'000'000'000);
  };
  Engine engine(pipeline3(), Deployment{}, factory, {});
  const RunStats stats = engine.run_until_complete(duration<double>(10.0));
  EXPECT_EQ(stats.ops[0].processed, 0u);
  EXPECT_EQ(stats.dropped, 0u);
}

}  // namespace
}  // namespace ss::runtime
