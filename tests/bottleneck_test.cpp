// Unit tests for Algorithm 2 (bottleneck elimination): optimal replication
// degrees, key-partitioning limits, stateful fallbacks, and the hold-off
// replication budget of §3.2.
#include "core/bottleneck.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/key_partitioning.hpp"
#include "core/topology.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

// --------------------------------------------------------- KeyPartitioning

TEST(KeyPartitioning, UniformKeysSplitEvenly) {
  KeyPartition p = partition_keys(KeyDistribution::uniform(100), 4);
  EXPECT_EQ(p.replicas, 4);
  EXPECT_NEAR(p.max_share, 0.25, 0.01);
  for (int r : p.replica_of_key) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 4);
  }
}

TEST(KeyPartitioning, HeavyKeyBoundsTheSplit) {
  // One key carries 60%: no partitioning can push p_max below 0.6.
  KeyPartition p = partition_keys(KeyDistribution({0.6, 0.2, 0.1, 0.1}), 3);
  EXPECT_NEAR(p.max_share, 0.6, 1e-12);
  // LPT puts the heavy key alone and balances the rest.
  EXPECT_EQ(p.replicas, 3);
}

TEST(KeyPartitioning, FewerKeysThanReplicas) {
  KeyPartition p = partition_keys(KeyDistribution::uniform(2), 5);
  EXPECT_EQ(p.replicas, 2);
  EXPECT_NEAR(p.max_share, 0.5, 1e-12);
  EXPECT_EQ(p.replica_of_key.size(), 2u);
}

TEST(KeyPartitioning, SingleReplicaTakesAll) {
  KeyPartition p = partition_keys(KeyDistribution::uniform(10), 1);
  EXPECT_EQ(p.replicas, 1);
  EXPECT_NEAR(p.max_share, 1.0, 1e-12);
}

TEST(KeyPartitioning, RejectsBadInput) {
  EXPECT_THROW((void)partition_keys(KeyDistribution(), 2), Error);
  EXPECT_THROW((void)partition_keys(KeyDistribution::uniform(4), 0), Error);
}

TEST(KeyPartitioning, LptBeatsNaiveRoundRobinOnSkew) {
  // Zipf(1.5) over 20 keys: greedy LPT must achieve p_max close to the
  // theoretical floor max(heaviest key, 1/n).
  KeyDistribution keys = KeyDistribution::zipf(20, 1.5);
  KeyPartition p = partition_keys(keys, 4);
  const double floor_share = std::max(keys.max_probability(), 0.25);
  EXPECT_LT(p.max_share, floor_share * 1.35);
  EXPECT_GE(p.max_share, floor_share - 1e-12);
}

// ------------------------------------------------------------ Algorithm 2

Topology stateless_bottleneck() {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 3.5 * kMs);  // rho = 3.5 -> 4 replicas
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(BottleneckElimination, StatelessGetsCeilRhoReplicas) {
  BottleneckResult result = eliminate_bottlenecks(stateless_bottleneck());
  EXPECT_EQ(result.plan.replicas_of(1), 4);  // ceil(3.5)
  EXPECT_TRUE(result.reaches_ideal);
  EXPECT_TRUE(result.unresolved.empty());
  EXPECT_NEAR(result.analysis.throughput(), 1000.0, 1e-6);
  EXPECT_EQ(result.total_replicas, 1 + 4 + 1);
  EXPECT_EQ(result.additional_replicas, 3);
}

TEST(BottleneckElimination, NoBottleneckNoReplicas) {
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("fast", 0.5 * kMs);
  b.add_edge(0, 1);
  BottleneckResult result = eliminate_bottlenecks(b.build());
  EXPECT_EQ(result.additional_replicas, 0);
  EXPECT_TRUE(result.reaches_ideal);
}

TEST(BottleneckElimination, StatefulBottleneckCannotBeRemoved) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("state", 4.0 * kMs, StateKind::kStateful);
  b.add_edge(0, 1);
  BottleneckResult result = eliminate_bottlenecks(b.build());
  EXPECT_EQ(result.plan.replicas_of(1), 1);
  EXPECT_FALSE(result.reaches_ideal);
  ASSERT_EQ(result.unresolved.size(), 1u);
  EXPECT_EQ(result.unresolved[0], 1u);
  // Throughput capped by backpressure at the stateful rate.
  EXPECT_NEAR(result.analysis.throughput(), 250.0, 1e-6);
}

TEST(BottleneckElimination, PartitionedWithMildSkewIsRemoved) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  OperatorSpec agg;
  agg.name = "agg";
  agg.service_time = 2.5 * kMs;  // rho = 2.5 -> 3 replicas wanted
  agg.state = StateKind::kPartitionedStateful;
  agg.keys = KeyDistribution::uniform(300);
  b.add_operator(std::move(agg));
  b.add_edge(0, 1);
  BottleneckResult result = eliminate_bottlenecks(b.build());
  EXPECT_EQ(result.plan.replicas_of(1), 3);
  EXPECT_TRUE(result.reaches_ideal);
  EXPECT_FALSE(result.partitions[1].replica_of_key.empty());
  EXPECT_LE(result.plan.max_share_of(1), 1.0 / 2.5 + 0.01);
}

TEST(BottleneckElimination, PartitionedWithHeavyKeyOnlyMitigates) {
  // The paper's example: n_opt = 3 but 50% of items share one key -> the
  // bottleneck is mitigated, not removed, and the source is corrected.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  OperatorSpec agg;
  agg.name = "agg";
  agg.service_time = 2.5 * kMs;
  agg.state = StateKind::kPartitionedStateful;
  std::vector<double> freq{0.5};
  for (int i = 0; i < 25; ++i) freq.push_back(0.02);
  agg.keys = KeyDistribution(freq);
  b.add_operator(std::move(agg));
  b.add_edge(0, 1);
  BottleneckResult result = eliminate_bottlenecks(b.build());
  EXPECT_FALSE(result.reaches_ideal);
  EXPECT_EQ(result.unresolved.size(), 1u);
  // p_max = 0.5 -> capacity 800/s -> throughput 800/s instead of 1000.
  EXPECT_NEAR(result.analysis.throughput(), 400.0 / 0.5, 1e-6);
}

TEST(BottleneckElimination, DownstreamOfStatefulBottleneckNotOverReplicated) {
  // stateful bottleneck throttles the flow; a slow stateless op behind it
  // must be sized for the *throttled* rate, not the nominal one.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("state", 2.0 * kMs, StateKind::kStateful);  // caps at 500/s
  b.add_operator("slowmap", 4.0 * kMs);                      // at 500/s: rho = 2
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  BottleneckResult result = eliminate_bottlenecks(b.build());
  EXPECT_EQ(result.plan.replicas_of(2), 2);  // not ceil(1000/250) = 4
  EXPECT_NEAR(result.analysis.throughput(), 500.0, 1e-6);
}

TEST(BottleneckElimination, SelectivityAwareSizing) {
  // flatmap doubles the rate; downstream sized for 2x source rate.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("flatmap", 0.4 * kMs, StateKind::kStateless, Selectivity{1.0, 2.0});
  b.add_operator("work", 1.0 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  BottleneckResult result = eliminate_bottlenecks(b.build());
  EXPECT_EQ(result.plan.replicas_of(2), 2);  // lambda = 2000/s, mu = 1000/s
  EXPECT_TRUE(result.reaches_ideal);
}

// --------------------------------------------------------------- hold-off

Topology two_bottlenecks() {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow_a", 6.0 * kMs);  // wants 6
  b.add_operator("slow_b", 4.0 * kMs);  // wants 4
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(HoldOffReplication, UnboundedUsesOptimalDegrees) {
  BottleneckResult result = eliminate_bottlenecks(two_bottlenecks());
  EXPECT_EQ(result.plan.replicas_of(1), 6);
  EXPECT_EQ(result.plan.replicas_of(2), 4);
  EXPECT_TRUE(result.reaches_ideal);
}

TEST(HoldOffReplication, BudgetScalesDegreesProportionally) {
  BottleneckOptions options;
  options.max_total_replicas = 9;  // optimal needs 6+4+2 = 12
  BottleneckResult result = eliminate_bottlenecks(two_bottlenecks(), options);
  EXPECT_LE(result.total_replicas, 9);
  // Proportional de-scalability (Fig. 10): throughput degrades roughly by
  // the budget ratio rather than collapsing.
  EXPECT_LT(result.analysis.throughput(), 1000.0);
  EXPECT_GT(result.analysis.throughput(), 500.0);
  EXPECT_FALSE(result.reaches_ideal);
}

TEST(HoldOffReplication, GenerousBudgetChangesNothing) {
  BottleneckOptions options;
  options.max_total_replicas = 100;
  BottleneckResult result = eliminate_bottlenecks(two_bottlenecks(), options);
  EXPECT_EQ(result.plan.replicas_of(1), 6);
  EXPECT_EQ(result.plan.replicas_of(2), 4);
}

TEST(HoldOffReplication, ApplyBudgetDirectly) {
  Topology t = two_bottlenecks();
  ReplicationPlan plan;
  plan.replicas = {1, 6, 4, 1};
  ReplicationPlan scaled = apply_replica_budget(t, plan, 8);
  EXPECT_LE(scaled.total_replicas(4), 8);
  for (OpIndex i = 0; i < 4; ++i) EXPECT_GE(scaled.replicas_of(i), 1);
  // Ratios roughly preserved: slow_a keeps more replicas than slow_b.
  EXPECT_GE(scaled.replicas_of(1), scaled.replicas_of(2));
  EXPECT_THROW((void)apply_replica_budget(t, plan, 0), Error);
}

TEST(HoldOffReplication, BudgetBelowOperatorCountDegradesToSequential) {
  Topology t = two_bottlenecks();
  ReplicationPlan plan;
  plan.replicas = {1, 6, 4, 1};
  ReplicationPlan scaled = apply_replica_budget(t, plan, 2);
  // One replica per operator is the floor; the budget cannot go lower.
  EXPECT_EQ(scaled.total_replicas(4), 4);
}

}  // namespace
}  // namespace ss
