// Randomized fence/drain-barrier tests: Algorithm-5 random topology shapes
// run to completion while the main thread forces N mid-run epoch
// switch-overs (Engine::reconfigure), alternating between the sequential
// deployment and one replicating a middle operator.  Exact tuple accounting
// must hold across every fence on 2/4/8 pooled workers and on the
// thread-per-actor backend.  The FenceTsan.* subset runs under
// ThreadSanitizer in CI (see .github/workflows/ci.yml).
#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "gen/random_topology.hpp"
#include "gen/rng.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

/// An Algorithm-5 random DAG whose source is paced (so the run lasts long
/// enough to land fences mid-stream) and whose other operators are
/// near-zero cost with unit selectivity, keeping accounting exact.
Topology paced_random_topology(std::uint64_t seed, double source_interval) {
  Rng rng(seed);
  const int vertices = 5 + static_cast<int>(seed % 16);  // 5..20
  const int edges = std::min(vertices + 2 + static_cast<int>(seed % 7),
                             vertices * (vertices - 1) / 2);
  const TopologyShape shape = random_shape(rng, vertices, edges);
  Topology::Builder b;
  for (int v = 0; v < shape.num_vertices; ++v) {
    b.add_operator("op" + std::to_string(v), v == 0 ? source_interval : 1e-6);
  }
  for (const auto& [from, to] : shape.edges) {
    b.add_edge(static_cast<OpIndex>(from), static_cast<OpIndex>(to));
  }
  b.normalize_probabilities();
  return b.build();
}

EngineConfig pooled_config(int workers) {
  EngineConfig cfg;
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = workers;
  return cfg;
}

/// Forces up to `forced` switch-overs into the live run, alternating the
/// sequential deployment with one that doubles a middle operator (when the
/// shape has one).  Every attempt retries until the engine accepts it or
/// the run completes; returns the number of accepted switch-overs.
int force_fences(Engine& engine, const Topology& t, int forced,
                 const std::atomic<bool>& done) {
  Deployment base;
  Deployment widened;
  widened.replication.replicas.assign(t.num_operators(), 1);
  OpIndex target = kInvalidOp;
  for (OpIndex v = 0; v < t.num_operators(); ++v) {
    if (v != t.source() && !t.out_edges(v).empty()) {
      target = v;
      break;
    }
  }
  if (target != kInvalidOp) widened.replication.replicas[target] = 2;
  int fences = 0;
  for (int i = 0; i < forced; ++i) {
    const Deployment& next = (i % 2 == 0 && target != kInvalidOp) ? widened : base;
    bool ok = false;
    while (!ok && !done.load(std::memory_order_acquire)) {
      ok = engine.reconfigure(next);
      if (!ok) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!ok) break;  // the source finished; stop forcing
    ++fences;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return fences;
}

/// Runs one random shape to completion under forced fences and checks the
/// accounting: no drops, the source produced every item, flow conservation
/// at every operator, and the epoch counters reflect the fences exactly.
void fence_and_check(std::uint64_t seed, EngineConfig config, std::int64_t items,
                     int forced) {
  const Topology t = paced_random_topology(seed, /*source_interval=*/0.25e-3);
  Engine engine(t, Deployment{}, synthetic_factory(1.0, items), std::move(config));
  RunStats stats;
  std::atomic<bool> done{false};
  std::thread runner([&] {
    stats = engine.run_until_complete(duration<double>(120.0));
    done.store(true, std::memory_order_release);
  });
  const int fences = force_fences(engine, t, forced, done);
  runner.join();

  const std::string ctx = "seed " + std::to_string(seed);
  EXPECT_GE(fences, 1) << ctx << ": run completed before any fence landed";
  EXPECT_EQ(stats.dropped, 0u) << ctx;
  EXPECT_EQ(stats.ops[t.source()].processed, static_cast<std::uint64_t>(items)) << ctx;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(stats.ops[i].emitted, stats.ops[i].processed) << ctx << ", op " << i;
  }
  EXPECT_EQ(stats.reconfigurations, fences) << ctx;
  EXPECT_EQ(stats.epochs, fences + 1) << ctx;
}

TEST(FenceBarrier, RandomTopologiesSurviveForcedFencesOnPooledWorkers) {
  constexpr int kWorkerCycle[] = {2, 4, 8};
  for (std::uint64_t seed = 400; seed < 408; ++seed) {
    fence_and_check(seed, pooled_config(kWorkerCycle[seed % 3]), /*items=*/1500,
                    /*forced=*/4);
  }
}

TEST(FenceBarrier, ThreadPerActorBackendSurvivesForcedFences) {
  for (std::uint64_t seed = 420; seed < 423; ++seed) {
    fence_and_check(seed, EngineConfig{}, /*items=*/1500, /*forced=*/4);
  }
}

TEST(FenceTsan, ForcedFenceSubsetStaysRaceFree) {
  // ThreadSanitizer target: a smaller slice (TSAN's ~10x slowdown rules
  // out the full sweep) still crossing fence arming, source buffering,
  // retirement vs. batched drains, and the epoch swap itself.
  constexpr int kWorkerCycle[] = {2, 4, 8};
  for (std::uint64_t seed = 430; seed < 433; ++seed) {
    fence_and_check(seed, pooled_config(kWorkerCycle[seed % 3]), /*items=*/900,
                    /*forced=*/3);
  }
}

}  // namespace
}  // namespace ss::runtime
