// Tests of the XML layer: the mini-DOM parser (well-formedness, entities,
// comments, error reporting) and the topology description round trip.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "xmlio/topology_xml.hpp"
#include "xmlio/xml.hpp"

namespace ss::xml {
namespace {

TEST(XmlParser, ParsesElementsAttributesText) {
  const XmlNode root = parse_xml(
      "<app name=\"demo\"><item id=\"1\">hello</item><item id=\"2\"/></app>");
  EXPECT_EQ(root.name, "app");
  EXPECT_EQ(root.attr("name"), "demo");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].text, "hello");
  EXPECT_EQ(root.children[1].attr("id"), "2");
}

TEST(XmlParser, HandlesDeclarationCommentsWhitespace) {
  const XmlNode root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- top comment -->\n"
      "<root>\n  <!-- inner -->\n  <leaf/>\n</root>\n"
      "<!-- trailing -->");
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "leaf");
}

TEST(XmlParser, DecodesEntities) {
  const XmlNode root = parse_xml("<r a=\"&lt;x&gt; &amp; &quot;y&quot;\">1 &lt; 2 &#65;</r>");
  EXPECT_EQ(root.attr("a"), "<x> & \"y\"");
  EXPECT_EQ(root.text, "1 < 2 A");
}

TEST(XmlParser, SingleQuotedAttributes) {
  const XmlNode root = parse_xml("<r a='one' b=\"two\"/>");
  EXPECT_EQ(root.attr("a"), "one");
  EXPECT_EQ(root.attr("b"), "two");
}

TEST(XmlParser, NestedStructure) {
  const XmlNode root = parse_xml("<a><b><c><d/></c></b></a>");
  EXPECT_EQ(root.children[0].children[0].children[0].name, "d");
}

TEST(XmlParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_xml(""), Error);
  EXPECT_THROW((void)parse_xml("<a>"), Error);                    // unterminated
  EXPECT_THROW((void)parse_xml("<a></b>"), Error);                // mismatched tags
  EXPECT_THROW((void)parse_xml("<a x=1/>"), Error);               // unquoted attribute
  EXPECT_THROW((void)parse_xml("<a x=\"1\" x=\"2\"/>"), Error);   // duplicate attribute
  EXPECT_THROW((void)parse_xml("<a/><b/>"), Error);               // two roots
  EXPECT_THROW((void)parse_xml("<a>&bogus;</a>"), Error);         // unknown entity
}

TEST(XmlParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_xml("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ss::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(XmlParser, NodeLookupHelpers) {
  const XmlNode root = parse_xml("<r><x i=\"1\"/><y/><x i=\"2\"/></r>");
  ASSERT_NE(root.child("x"), nullptr);
  EXPECT_EQ(root.child("x")->attr("i"), "1");
  EXPECT_EQ(root.child("nope"), nullptr);
  EXPECT_EQ(root.children_named("x").size(), 2u);
  EXPECT_EQ(root.child("y")->attr("missing", "dflt"), "dflt");
  EXPECT_THROW((void)root.child("y")->require_attr("missing"), Error);
  EXPECT_THROW((void)root.child("x")->attr_double("i2"), Error);
  EXPECT_DOUBLE_EQ(root.child("x")->attr_double("i"), 1.0);
  EXPECT_DOUBLE_EQ(root.child("y")->attr_double("nope", 7.5), 7.5);
}

TEST(XmlWriter, RoundTripsDom) {
  const XmlNode original = parse_xml("<r a=\"1 &amp; 2\"><c>text &lt;b&gt;</c><d/></r>");
  const XmlNode reparsed = parse_xml(write_xml(original));
  EXPECT_EQ(reparsed.attr("a"), "1 & 2");
  EXPECT_EQ(reparsed.child("c")->text, "text <b>");
  EXPECT_NE(reparsed.child("d"), nullptr);
}

// ------------------------------------------------------- topology format

constexpr const char* kValidTopology = R"(
<topology name="t">
  <operator name="src" impl="source" service-time="1" time-unit="ms"/>
  <operator name="agg" impl="win_sum" service-time="2.5" time-unit="ms"
            state="partitioned" input-selectivity="10" output-selectivity="1">
    <keys distribution="zipf" count="10" alpha="1.5"/>
  </operator>
  <operator name="out" impl="sink" service-time="100" time-unit="us"/>
  <edge from="src" to="agg"/>
  <edge from="agg" to="out" probability="1.0"/>
</topology>
)";

TEST(TopologyXml, LoadsAValidDescription) {
  Topology t = load_topology(kValidTopology);
  ASSERT_EQ(t.num_operators(), 3u);
  EXPECT_EQ(t.op(0).name, "src");
  EXPECT_DOUBLE_EQ(t.op(0).service_time, 1e-3);
  EXPECT_DOUBLE_EQ(t.op(2).service_time, 100e-6);  // time-unit us
  EXPECT_EQ(t.op(1).state, StateKind::kPartitionedStateful);
  EXPECT_DOUBLE_EQ(t.op(1).selectivity.input, 10.0);
  EXPECT_EQ(t.op(1).keys.num_keys(), 10u);
  EXPECT_EQ(t.op(1).impl, "win_sum");
}

TEST(TopologyXml, ExplicitKeyValues) {
  Topology t = load_topology(R"(
<topology name="t">
  <operator name="src" service-time="1"/>
  <operator name="agg" service-time="1" state="partitioned">
    <keys values="0.5 0.3 0.2"/>
  </operator>
  <edge from="src" to="agg"/>
</topology>)");
  ASSERT_EQ(t.op(1).keys.num_keys(), 3u);
  EXPECT_DOUBLE_EQ(t.op(1).keys.probability(0), 0.5);
}

TEST(TopologyXml, RejectsBadDescriptions) {
  EXPECT_THROW((void)load_topology("<nope/>"), Error);  // wrong root
  EXPECT_THROW((void)load_topology(R"(
<topology><operator name="a" service-time="1"/>
<edge from="a" to="ghost"/></topology>)"),
               Error);  // unknown endpoint
  EXPECT_THROW((void)load_topology(R"(
<topology><operator name="a" service-time="1" time-unit="weeks"/></topology>)"),
               Error);  // bad unit
  EXPECT_THROW((void)load_topology(R"(
<topology>
  <operator name="a" service-time="1"/>
  <operator name="b" service-time="1"/>
  <edge from="a" to="b" probability="0.5"/>
</topology>)"),
               Error);  // probabilities do not sum to 1
}

TEST(TopologyXml, SaveLoadRoundTrip) {
  Topology original = load_topology(kValidTopology);
  Topology reloaded = load_topology(save_topology(original, "t"));
  ASSERT_EQ(reloaded.num_operators(), original.num_operators());
  for (OpIndex i = 0; i < original.num_operators(); ++i) {
    EXPECT_EQ(reloaded.op(i).name, original.op(i).name);
    EXPECT_NEAR(reloaded.op(i).service_time, original.op(i).service_time, 1e-9);
    EXPECT_EQ(reloaded.op(i).state, original.op(i).state);
    EXPECT_NEAR(reloaded.op(i).selectivity.input, original.op(i).selectivity.input, 1e-9);
    EXPECT_EQ(reloaded.op(i).impl, original.op(i).impl);
  }
  ASSERT_EQ(reloaded.num_edges(), original.num_edges());
  for (const Edge& e : original.edges()) {
    EXPECT_NEAR(reloaded.edge_probability(e.from, e.to), e.probability, 1e-6);
  }
  // Key distributions survive via explicit values.
  ASSERT_EQ(reloaded.op(1).keys.num_keys(), original.op(1).keys.num_keys());
  for (std::size_t k = 0; k < original.op(1).keys.num_keys(); ++k) {
    EXPECT_NEAR(reloaded.op(1).keys.probability(k), original.op(1).keys.probability(k), 1e-6);
  }
}

TEST(TopologyXml, FileRoundTrip) {
  Topology original = load_topology(kValidTopology);
  const std::string path = ::testing::TempDir() + "/ss_topology_test.xml";
  save_topology_file(original, path, "t");
  Topology reloaded = load_topology_file(path);
  EXPECT_EQ(reloaded.num_operators(), original.num_operators());
  EXPECT_THROW((void)load_topology_file("/nonexistent/nope.xml"), Error);
}

}  // namespace
}  // namespace ss::xml
