// Tests of the discrete-event BAS simulator: agreement with Algorithm 1
// across hand-built topologies, service-time laws (the distribution-
// agnosticism claim of §3.1), selectivity, fission plans, and determinism.
#include "sim/des.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss::sim {
namespace {

constexpr double kMs = 1e-3;

Topology bottleneck_pipeline() {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("slow", 4.0 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

SimOptions quick(double duration = 80.0) {
  SimOptions o;
  o.duration = duration;
  o.seed = 7;
  return o;
}

TEST(Des, MatchesModelOnBottleneckPipeline) {
  Topology t = bottleneck_pipeline();
  SimResult sim = simulate(t, quick());
  const double predicted = steady_state(t).throughput();  // 250/s
  EXPECT_NEAR(sim.throughput, predicted, 0.04 * predicted);
  EXPECT_NEAR(sim.sink_rate, predicted, 0.04 * predicted);
}

TEST(Des, SaturatedServerHasFullUtilization) {
  Topology t = bottleneck_pipeline();
  SimResult sim = simulate(t, quick());
  EXPECT_GT(sim.ops[1].busy_fraction, 0.95);
  EXPECT_LT(sim.ops[2].busy_fraction, 0.2);
}

TEST(Des, VirtualTimeLatencyPercentilesAreFilledAndOrdered) {
  Topology t = bottleneck_pipeline();
  SimResult sim = simulate(t, quick());
  // End-to-end: birth at the source to leaving the system at a sink.
  ASSERT_GT(sim.end_to_end.count, 0u);
  EXPECT_GT(sim.end_to_end.p50, 0.0);
  EXPECT_LE(sim.end_to_end.p50, sim.end_to_end.p95);
  EXPECT_LE(sim.end_to_end.p95, sim.end_to_end.p99);
  // Per-op latency is source stamp -> service start (the runtime's metering
  // convention), so it accumulates along the pipeline: the sink's delay
  // includes the saturated stage's queueing plus its service time.
  for (OpIndex i = 1; i < t.num_operators(); ++i) {
    EXPECT_GT(sim.ops[i].latency.count, 0u) << "op " << i;
  }
  EXPECT_GT(sim.ops[2].latency.p50, sim.ops[1].latency.p50);
  // End-to-end cannot be shorter than the delay to the bottleneck.
  EXPECT_GE(sim.end_to_end.p50, sim.ops[1].latency.p50);
}

TEST(Des, NoBottleneckRunsAtSourceRate) {
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("fast", 0.5 * kMs);
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();
  SimResult sim = simulate(t, quick());
  EXPECT_NEAR(sim.throughput, 500.0, 0.03 * 500.0);
}

struct LawCase {
  ServiceLaw law;
  const char* name;
};

class DesLawTest : public ::testing::TestWithParam<LawCase> {};

// Flow conservation holds regardless of the service distribution (§3.1).
TEST_P(DesLawTest, ThroughputMatchesModelUnderEveryLaw) {
  Topology t = bottleneck_pipeline();
  SimOptions o = quick(120.0);
  o.law = GetParam().law;
  SimResult sim = simulate(t, o);
  const double predicted = steady_state(t).throughput();
  // Deterministic service converges tightest; stochastic laws still land
  // within a few percent at this horizon.
  EXPECT_NEAR(sim.throughput, predicted, 0.05 * predicted) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Laws, DesLawTest,
    ::testing::Values(LawCase{ServiceLaw::deterministic(), "deterministic"},
                      LawCase{ServiceLaw::exponential(), "exponential"},
                      LawCase{ServiceLaw::normal(0.25), "normal"},
                      LawCase{ServiceLaw::lognormal(0.5), "lognormal"}),
    [](const auto& info) { return info.param.name; });

TEST(Des, ProbabilisticFanOutSplitsFlow) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 0.5 * kMs);
  b.add_operator("b", 0.5 * kMs);
  b.add_edge(0, 1, 0.3);
  b.add_edge(0, 2, 0.7);
  Topology t = b.build();
  SimResult sim = simulate(t, quick());
  EXPECT_NEAR(sim.ops[1].arrival_rate, 300.0, 15.0);
  EXPECT_NEAR(sim.ops[2].arrival_rate, 700.0, 25.0);
}

TEST(Des, InputSelectivityDividesDepartures) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("window", 0.2 * kMs, StateKind::kStateful, Selectivity{10.0, 1.0});
  b.add_operator("sink", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();
  SimResult sim = simulate(t, quick());
  EXPECT_NEAR(sim.ops[1].departure_rate, 100.0, 6.0);
  EXPECT_NEAR(sim.throughput, 1000.0, 30.0);
}

TEST(Des, OutputSelectivityCreatesDownstreamBottleneck) {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("flatmap", 0.2 * kMs, StateKind::kStateless, Selectivity{1.0, 3.0});
  b.add_operator("sink", 0.5 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();
  SimResult sim = simulate(t, quick());
  const double predicted = steady_state(t).throughput();  // 2000/3
  EXPECT_NEAR(sim.throughput, predicted, 0.05 * predicted);
}

TEST(Des, FissionPlanRemovesBottleneck) {
  Topology t = bottleneck_pipeline();
  SimOptions o = quick();
  o.replication.replicas = {1, 4, 1};
  SimResult sim = simulate(t, o);
  EXPECT_NEAR(sim.throughput, 1000.0, 0.05 * 1000.0);
}

TEST(Des, PartitionedFissionLimitedByKeySkew) {
  // One key holds half the stream: two replicas cap the operator at
  // mu / 0.5 rather than 2 mu.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  OperatorSpec agg;
  agg.name = "agg";
  agg.service_time = 4.0 * kMs;
  agg.state = StateKind::kPartitionedStateful;
  agg.keys = KeyDistribution({0.5, 0.2, 0.2, 0.1});
  b.add_operator(std::move(agg));
  b.add_edge(0, 1);
  Topology t = b.build();

  SimOptions o = quick(120.0);
  o.replication.replicas = {1, 2};
  SimResult sim = simulate(t, o);
  // Model: capacity = mu / p_max = 250 / 0.5 = 500/s.
  ReplicationPlan plan;
  plan.replicas = {1, 2};
  plan.max_share = {0.0, 0.5};
  const double predicted = steady_state(t, plan).throughput();
  EXPECT_NEAR(sim.throughput, predicted, 0.06 * predicted);
}

TEST(Des, DeterministicForFixedSeed) {
  Topology t = bottleneck_pipeline();
  SimResult a = simulate(t, quick(20.0));
  SimResult b = simulate(t, quick(20.0));
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].consumed, b.ops[i].consumed);
    EXPECT_EQ(a.ops[i].emitted, b.ops[i].emitted);
  }
}

TEST(Des, SeedChangesStochasticOutcome) {
  Topology t = bottleneck_pipeline();
  SimOptions o1 = quick(20.0);
  SimOptions o2 = quick(20.0);
  o2.seed = 12345;
  SimResult a = simulate(t, o1);
  SimResult b = simulate(t, o2);
  EXPECT_NE(a.events, b.events);  // exponential draws differ
}

TEST(Des, TinyBuffersStillConserveFlow) {
  Topology t = bottleneck_pipeline();
  SimOptions o = quick(120.0);
  o.buffer_capacity = 1;
  SimResult sim = simulate(t, o);
  const double predicted = steady_state(t).throughput();
  // Capacity-1 buffers add blocking stalls; deterministic law removes the
  // variance so the rate still approaches the model closely.
  o.law = ServiceLaw::deterministic();
  SimResult det = simulate(t, o);
  EXPECT_NEAR(det.throughput, predicted, 0.05 * predicted);
  EXPECT_GT(sim.throughput, 0.5 * predicted);
}

TEST(Des, MeanSojournMatchesMm1) {
  // lambda = 500/s into mu = 1000/s: M/M/1 sojourn W = 1/(mu-lambda) = 2 ms.
  Topology::Builder b;
  b.add_operator("src", 2.0 * kMs);
  b.add_operator("queue", 1.0 * kMs);
  b.add_edge(0, 1);
  SimResult sim = simulate(b.build(), quick(150.0));
  EXPECT_NEAR(sim.ops[1].mean_sojourn, 2.0 * kMs, 0.15 * kMs);
  // Little's law consistency: L = lambda * W.
  EXPECT_NEAR(sim.ops[1].mean_queue + sim.ops[1].busy_fraction,
              sim.ops[1].arrival_rate * sim.ops[1].mean_sojourn, 0.05);
}

TEST(Des, SaturatedSojournBoundedByBuffer) {
  Topology t = bottleneck_pipeline();  // slow op saturates, B = 64
  SimResult sim = simulate(t, quick(120.0));
  // Under BAS a saturated queue holds ~B items: W ~ (B+1)/mu = 260 ms.
  EXPECT_GT(sim.ops[1].mean_queue, 50.0);
  EXPECT_LE(sim.ops[1].mean_queue, 64.0);
  EXPECT_NEAR(sim.ops[1].mean_sojourn, 65.0 * 4.0 * kMs, 0.15 * 65.0 * 4.0 * kMs);
}

TEST(Des, IdleOperatorHasNearZeroQueue) {
  Topology::Builder b;
  b.add_operator("src", 10.0 * kMs);
  b.add_operator("fast", 0.1 * kMs);
  b.add_edge(0, 1);
  SimResult sim = simulate(b.build(), quick(60.0));
  EXPECT_LT(sim.ops[1].mean_queue, 0.05);
  EXPECT_LT(sim.ops[1].mean_sojourn, 0.5 * kMs);
}

TEST(Des, RejectsBadOptions) {
  Topology t = bottleneck_pipeline();
  SimOptions o;
  o.duration = 0.0;
  EXPECT_THROW((void)simulate(t, o), Error);
  o.duration = 1.0;
  o.warmup_fraction = 1.5;
  EXPECT_THROW((void)simulate(t, o), Error);
}

}  // namespace
}  // namespace ss::sim
