// Online profile estimation (runtime/profiler.hpp) and the live stats
// endpoint (runtime/stats_server.hpp).
//
// Units pin the estimator mechanics: multi-item busy slices dominate the
// estimate, singleton slices fill in at reduced weight without raising
// confidence, the recorder thins to 1-in-8 sampling once every active
// operator is confident, and blocked-edge blame propagates transitively to
// the root-cause operator.  The convergence sweep runs Alg. 5 testbed
// topologies with synthetic (timed-wait) operators deliberately below
// saturation and checks the estimated non-blocking service times against
// the declared ground truth within 15%.  ProfilerTsan.* are the
// thread-sanitizer subset: concurrent recorders, folds and snapshots.
#include "runtime/profiler.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/steady_state.hpp"
#include "gen/workload.hpp"
#include "runtime/engine.hpp"
#include "runtime/stats_server.hpp"
#include "runtime/telemetry.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

constexpr std::uint64_t kMs = 1'000'000;  // ns per millisecond

TEST(Profiler, MultiItemSlicesEstimateTheNonBlockingRate) {
  ProfileEstimator est(1, nullptr, nullptr);
  // Twenty slices, each draining 10 items in 10 ms: 1 ms per item.
  for (int i = 0; i < 20; ++i) est.record_slice(0, 10 * kMs, 10);
  est.fold_now();
  const std::vector<ProfileEstimate> snap = est.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_NEAR(snap[0].estimated_rate, 1000.0, 1.0);
  EXPECT_EQ(snap[0].samples, 200u);
  EXPECT_GT(snap[0].confidence, 0.5);
  // Identical gaps: the fitted service-time variability is ~0.
  EXPECT_GE(snap[0].cv2, 0.0);
  EXPECT_LT(snap[0].cv2, 0.01);
}

TEST(Profiler, SingletonSlicesFillInButNeverRaiseConfidence) {
  ProfileEstimator est(1, nullptr, nullptr);
  for (int i = 0; i < 50; ++i) est.record_slice(0, 2 * kMs, 1);
  est.fold_now();
  const std::vector<ProfileEstimate> snap = est.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  // The estimate exists (500/s from the 2 ms singletons)...
  EXPECT_NEAR(snap[0].estimated_rate, 500.0, 1.0);
  // ...but confidence stays zero: singleton slices carry slice-entry
  // overhead, so they must not disarm the dense-sampling window.
  EXPECT_EQ(snap[0].samples, 0u);
  EXPECT_EQ(snap[0].confidence, 0.0);
  EXPECT_TRUE(est.armed());
}

TEST(Profiler, DisarmsAndThinsSamplingOnceConfident) {
  ProfilerConfig config;
  config.confidence_target = 8;  // confidence = items / (items + 4)
  ProfileEstimator est(1, nullptr, nullptr, config);
  for (int i = 0; i < 30; ++i) est.record_slice(0, 4 * kMs, 4);
  est.fold_now();
  EXPECT_FALSE(est.armed()) << "120 gap items should clear the threshold";
  const std::uint64_t before = est.snapshot()[0].samples;
  // Disarmed: only ~1 in 8 of these slices may be recorded.
  for (int i = 0; i < 80; ++i) est.record_slice(0, 4 * kMs, 4);
  est.fold_now();
  const std::uint64_t delta = est.snapshot()[0].samples - before;
  EXPECT_LE(delta, 80u);  // far below the armed 320
  EXPECT_GE(delta, 4u);   // but the thinned sampler still observes
}

TEST(Profiler, EwmaTracksServiceTimeDrift) {
  ProfilerConfig config;
  config.ewma_alpha = 0.3;
  ProfileEstimator est(1, nullptr, nullptr, config);
  for (int i = 0; i < 10; ++i) est.record_slice(0, 10 * kMs, 10);  // 1 ms
  est.fold_now();
  EXPECT_NEAR(1e9 / est.snapshot()[0].estimated_rate, 1.0 * kMs, 0.01 * kMs);
  for (int i = 0; i < 10; ++i) est.record_slice(0, 20 * kMs, 10);  // 2 ms
  est.fold_now();
  // One fold of drift moves the smoothed estimate by alpha of the step.
  EXPECT_NEAR(1e9 / est.snapshot()[0].estimated_rate, 1.3 * kMs, 0.02 * kMs);
}

TEST(Profiler, BlameFlowsTransitivelyToTheRootCause) {
  // 0 blocked pushing into 1, and 1 blocked pushing into 2.  Without busy
  // time of its own, operator 1 is a pure conduit: the blame it receives
  // passes through to 2, the root cause.
  ProfileEstimator est(3, nullptr, nullptr);
  est.record_blocked_edge(0, 1, 1'000'000'000ULL);
  est.record_blocked_edge(1, 2, 1'000'000'000ULL);
  est.fold_now();
  const std::vector<BottleneckEntry> ranking = est.bottlenecks();
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0].op, 2u);
  EXPECT_GT(ranking[0].share, 0.9);
}

TEST(Profiler, BusyDownstreamOperatorsKeepTheBlame) {
  // Same chain, but operator 1 accumulated 10 s of real service: it was
  // mostly *working*, not waiting, so the blame arriving from 0 stays on 1.
  TelemetryBoard board(3);
  board.add_busy(1, 10'000'000'000ULL);
  ProfileEstimator est(3, &board, nullptr);
  est.record_blocked_edge(0, 1, 1'000'000'000ULL);
  est.record_blocked_edge(1, 2, 100'000'000ULL);
  est.fold_now();
  const std::vector<BottleneckEntry> ranking = est.bottlenecks();
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking[0].op, 1u);
  EXPECT_GT(ranking[0].share, 0.8);
}

TEST(Profiler, QueueProbesMeasureTheStallFraction) {
  int calls = 0;
  ProfileEstimator est(1, nullptr, nullptr, ProfilerConfig{},
                       [&](std::vector<QueueProbe>& probes) {
                         probes[0].valid = true;
                         probes[0].capacity = 4;
                         probes[0].depth = (++calls % 2 == 0) ? 4 : 1;  // full every 2nd
                       });
  for (int i = 0; i < 10; ++i) est.fold_now();
  EXPECT_NEAR(est.snapshot()[0].queue_full_fraction, 0.5, 0.01);
}

TEST(Profiler, OutOfRangeObservationsAreIgnored) {
  ProfileEstimator est(2, nullptr, nullptr);
  est.record_slice(7, kMs, 3);           // op out of range
  est.record_slice(0, 0, 3);             // zero duration
  est.record_slice(0, kMs, 0);           // zero items
  est.record_blocked_edge(7, 0, kMs);    // edge out of range
  est.record_blocked_edge(0, 9, kMs);
  est.fold_now();
  EXPECT_EQ(est.snapshot()[0].estimated_rate, 0.0);
  EXPECT_TRUE(est.bottlenecks().empty());
}

// ---------------------------------------------------------------------------
// Alg. 5 testbed convergence, deliberately below saturation.

TEST(ProfilerConvergence, TestbedEstimatesMatchGroundTruthBelowSaturation) {
  // The sweep asserts wall-clock pacing of live runs against declared
  // ground truth.  The test is RUN_SERIAL, but on a shared virtualized
  // host a window of hypervisor CPU steal can still distort every timed
  // wait for seconds at a time, so a transiently failing sweep earns up
  // to two fresh retries before it counts.
  constexpr int kAttempts = 3;
  int confident = 0;
  int within = 0;
  std::string misses;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
  confident = 0;
  within = 0;
  misses.clear();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    // The paper's testbed paces the source 33% *faster* than the fastest
    // operator so every topology saturates (§5.3).  This sweep wants the
    // opposite regime — every operator below saturation, where busy-time
    // rates are biased and the gap estimator has to reconstruct the truth.
    // Utilization is linear in the source rate (open network), so a first
    // generation probes the seed's hottest operator and a second generation
    // with the same seed rescales the speedup to pin max rho at 0.6: as
    // much traffic as possible (hand-off batching still forms the backlog
    // bursts the estimator feeds on) with nothing saturated.
    // Reported utilization is clamped at 1 and backpressure-corrected, so
    // the rescale iterates: each round shrinks the speedup by at least
    // 0.6x while saturated, and the first sub-saturated round (linear
    // regime) lands max rho on 0.6 exactly.
    WorkloadOptions workload;
    workload.source_speedup = 1.0;
    for (int iter = 0; iter < 8; ++iter) {
      Rng probe_rng(seed);
      const Topology probe = random_topology(probe_rng, {}, workload);
      const SteadyStateResult probe_rates = steady_state(probe);
      double max_rho = 0.0;
      for (OpIndex i = 0; i < probe.num_operators(); ++i) {
        if (i == probe.source()) continue;
        max_rho = std::max(max_rho, probe_rates.rates[i].utilization);
      }
      ASSERT_GT(max_rho, 0.0);
      if (max_rho > 0.6 && max_rho < 0.7) break;
      workload.source_speedup *= 0.65 / max_rho;
    }
    Rng rng(seed);
    const Topology t = random_topology(rng, {}, workload);
    const SteadyStateResult rates = steady_state(t);

    EngineConfig cfg;
    cfg.scheduler = SchedulerKind::kPooled;
    cfg.workers = 4;
    cfg.profile_period = 0.1;
    Engine engine(t, Deployment{}, synthetic_factory(), cfg);
    const RunStats stats = engine.run_for(duration<double>(4.0));
    ASSERT_TRUE(stats.has_profile);
    ASSERT_EQ(stats.profile.size(), static_cast<std::size_t>(t.num_operators()));

    for (OpIndex i = 0; i < t.num_operators(); ++i) {
      if (i == t.source()) continue;  // pacing wait, not service
      const ProfileEstimate& p = stats.profile[i];
      // Score only where the estimator itself claims confidence, the
      // operator is genuinely sub-saturated, and the declared service time
      // is large enough for the timed wait to realize it accurately.
      if (p.confidence < 0.2 || p.estimated_rate <= 0.0) continue;
      if (rates.rates[i].utilization > 0.7) continue;
      if (t.op(i).service_time < 100e-6) continue;
      ++confident;
      const double truth = t.op(i).service_time;
      const double estimated = 1.0 / p.estimated_rate;
      if (std::abs(estimated - truth) <= 0.15 * truth) {
        ++within;
      } else {
        misses += t.op(i).name + " (seed " + std::to_string(seed) + ": est " +
                  std::to_string(estimated) + " vs " + std::to_string(truth) +
                  ") ";
      }
    }
  }
  if (within >= 3 && within * 4 >= confident * 3) break;
  }
  // The sweep must actually exercise the tolerance, not vacuously pass...
  EXPECT_GE(within, 3) << "too few confident sub-saturation estimates";
  // ...and the overwhelming majority of confident estimates must land
  // inside it.  A strict all-must-pass gate would re-assert PacedWaiter's
  // drift-compensation debt: a timed wait that overshoots (pool
  // oversubscription, timer slack) repays the debt by shortening later
  // waits, and those shortened waits land disproportionately in the
  // backlog bursts the estimator samples — the realized burst service time
  // genuinely is below the declared one.  The estimator reports what the
  // operator did; the 75% majority keeps the convergence claim without
  // penalizing it for the harness's own pacing artifact.
  EXPECT_GE(within * 4, confident * 3) << "outliers: " << misses;
}

// ---------------------------------------------------------------------------
// Live stats endpoint.

MetricsSample sample_fixture() {
  MetricsSample s;
  s.epoch = 2;
  s.dropped = 1;
  s.counters.at_seconds = 1.5;
  s.counters.processed = {100, 50};
  s.counters.emitted = {100, 0};
  s.counters.busy_ns = {500'000'000, 250'000'000};
  s.counters.blocked_ns = {0, 10'000'000};
  s.counters.queue_depth = {0, 3};
  s.counters.queue_peak = {2, 7};
  s.profile.resize(2);
  s.profile[1].estimated_rate = 400.0;
  s.profile[1].busy_rate = 200.0;
  s.profile[1].confidence = 0.8;
  s.profile[1].samples = 320;
  s.profile[1].cv2 = 0.5;
  s.profile[1].queue_full_fraction = 0.25;
  BottleneckEntry b;
  b.op = 1;
  b.blame_seconds = 0.75;
  b.share = 1.0;
  s.bottlenecks.push_back(b);
  s.scheduler.steals = 5;
  s.scheduler.batches = 9;
  s.scheduler.ring_enqueues = 150;
  s.scheduler.ring_spills = 2;
  return s;
}

/// Asks the kernel for a free loopback port (bind to 0, read it back).
int free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StatsServer, JsonRenderingCoversProfileAndBottlenecks) {
  StatsServer server(free_port(), sample_fixture, {"source", "worker"});
  const std::string json = server.render_json(sample_fixture());
  EXPECT_NE(json.find("\"name\":\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"est_rate\":400"), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":0.8"), std::string::npos);
  EXPECT_NE(json.find("\"cv2\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"bottlenecks\":[{\"op\":\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_enqueues\":150"), std::string::npos);
  EXPECT_NE(json.find("\"ring_spills\":2"), std::string::npos);
  // Balanced braces/brackets: a cheap well-formedness check without a
  // JSON dependency (the CI smoke job runs the real parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(StatsServer, PrometheusRenderingDeclaresTypesForEveryFamily) {
  StatsServer server(free_port(), sample_fixture, {"source", "worker"});
  const std::string text = server.render_prometheus(sample_fixture());
  for (const char* family :
       {"ss_op_processed_total", "ss_op_busy_seconds_total",
        "ss_op_estimated_service_rate", "ss_op_profile_confidence",
        "ss_op_bottleneck_share", "ss_sched_ring_enqueues_total"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family), std::string::npos) << family;
  }
  EXPECT_NE(text.find("ss_op_estimated_service_rate{op=\"worker\"} 400"),
            std::string::npos);
  EXPECT_NE(text.find("ss_op_bottleneck_share{op=\"worker\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ss_sched_ring_spills_total 2"), std::string::npos);
}

TEST(StatsServer, ServesBothEndpointsOverHttp) {
  const int port = free_port();
  StatsServer server(port, sample_fixture, {"source", "worker"});
  server.start();
  const std::string json = http_get(port, "/stats.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"est_rate\":400"), std::string::npos);
  const std::string prom = http_get(port, "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("text/plain"), std::string::npos);
  EXPECT_NE(prom.find("ss_op_processed_total"), std::string::npos);
  const std::string missing = http_get(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.stop();
}

TEST(StatsServer, RejectsInvalidAndTakenPorts) {
  EXPECT_THROW(StatsServer(-1, sample_fixture, {}), Error);
  EXPECT_THROW(StatsServer(70000, sample_fixture, {}), Error);
  const int port = free_port();
  StatsServer first(port, sample_fixture, {});
  EXPECT_THROW(StatsServer(port, sample_fixture, {}), Error);
}

// ---------------------------------------------------------------------------
// TSAN subset: concurrent recorders, folds and snapshots.

TEST(ProfilerTsan, ConcurrentRecordersAndFoldsAreRaceFree) {
  TelemetryBoard board(4);
  ProfileEstimator est(4, &board, nullptr);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      // A fixed minimum burst before honoring stop: the folding loop below
      // can finish before the OS even schedules this thread, and the test
      // needs real recorded work to assert on afterwards.
      std::uint64_t n = 0;
      while (n < 5000 || !stop.load(std::memory_order_relaxed)) {
        est.record_slice(static_cast<OpIndex>(t), (1 + n % 5) * 1000, 1 + n % 4);
        est.record_blocked_edge(static_cast<OpIndex>(t),
                                static_cast<OpIndex>((t + 1) % 4), 500);
        ++n;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    est.fold_now();
    (void)est.snapshot();
    (void)est.bottlenecks();
    (void)est.armed();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();
  est.fold_now();
  EXPECT_GT(est.snapshot()[0].estimated_rate, 0.0);
  EXPECT_FALSE(est.bottlenecks().empty());
}

TEST(ProfilerTsan, StartStopWithLiveRecordersIsRaceFree) {
  ProfilerConfig config;
  config.period_seconds = 0.01;
  ProfileEstimator est(2, nullptr, nullptr, config);
  est.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        est.record_slice(static_cast<OpIndex>(t), 2000, 2);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (std::thread& th : threads) th.join();
  est.stop();
  EXPECT_GT(est.snapshot()[static_cast<std::size_t>(0)].samples, 0u);
}

}  // namespace
}  // namespace ss::runtime
