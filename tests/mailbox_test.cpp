// Unit tests for the bounded blocking mailbox (BAS semantics, send timeout,
// shutdown tokens bypassing the bound, close/drain behaviour).
#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace ss::runtime {
namespace {

using namespace std::chrono_literals;

Message data_msg(std::int64_t id) {
  Tuple t;
  t.id = id;
  return Message::data(t, 0, 1);
}

TEST(Mailbox, SendReceiveRoundTrip) {
  Mailbox box(4);
  EXPECT_TRUE(box.send(data_msg(7), 1s));
  Message out;
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 7);
  EXPECT_EQ(out.kind, Message::Kind::kData);
}

TEST(Mailbox, PreservesFifoOrder) {
  Mailbox box(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(box.send(data_msg(i), 1s));
  Message out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.receive(out));
    EXPECT_EQ(out.tuple.id, i);
  }
}

TEST(Mailbox, SendTimesOutWhenFull) {
  Mailbox box(2);
  ASSERT_TRUE(box.send(data_msg(0), 10ms));
  ASSERT_TRUE(box.send(data_msg(1), 10ms));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.send(data_msg(2), 50ms));  // full: blocks then drops
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 45ms);
  EXPECT_EQ(box.dropped(), 1u);
  EXPECT_EQ(box.size(), 2u);
}

TEST(Mailbox, BlockedSenderResumesWhenSlotFrees) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::thread producer([&] { EXPECT_TRUE(box.send(data_msg(1), 5s)); });
  std::this_thread::sleep_for(20ms);  // let the producer block (BAS)
  Message out;
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 0);
  producer.join();
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 1);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, UnboundedSendBypassesCapacity) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 10ms));
  box.send_unbounded(Message::shutdown());  // must not block even when full
  EXPECT_EQ(box.size(), 2u);
}

TEST(Mailbox, ReceiverBlocksUntilMessageArrives) {
  Mailbox box(4);
  Message out;
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_TRUE(box.send(data_msg(42), 1s));
  });
  ASSERT_TRUE(box.receive(out));  // blocks until the producer delivers
  EXPECT_EQ(out.tuple.id, 42);
  producer.join();
}

TEST(Mailbox, CloseDrainsThenStops) {
  Mailbox box(4);
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  ASSERT_TRUE(box.send(data_msg(2), 1s));
  box.close();
  Message out;
  EXPECT_TRUE(box.receive(out));
  EXPECT_TRUE(box.receive(out));
  EXPECT_FALSE(box.receive(out));  // closed and drained
}

TEST(Mailbox, CloseRejectsFurtherSends) {
  Mailbox box(4);
  box.close();
  EXPECT_FALSE(box.send(data_msg(1), 10ms));
}

TEST(Mailbox, CloseWakesBlockedSender) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::thread producer([&] { EXPECT_FALSE(box.send(data_msg(1), 5s)); });
  std::this_thread::sleep_for(20ms);
  box.close();
  producer.join();  // returns promptly rather than waiting the 5s timeout
}

TEST(Mailbox, ConcurrentProducersDeliverEverything) {
  Mailbox box(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.send(data_msg(p * kPerProducer + i), std::chrono::seconds(10)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  Message out;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_TRUE(box.receive(out));
    seen[static_cast<std::size_t>(out.tuple.id)] = true;
  }
  for (std::thread& t : producers) t.join();
  for (bool b : seen) EXPECT_TRUE(b);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, TryReceiveNonBlocking) {
  Mailbox box(4);
  Message out;
  EXPECT_FALSE(box.try_receive(out));
  ASSERT_TRUE(box.send(data_msg(5), 1s));
  EXPECT_TRUE(box.try_receive(out));
  EXPECT_EQ(out.tuple.id, 5);
}

TEST(Mailbox, ZeroCapacityIsClampedToOne) {
  Mailbox box(0);
  EXPECT_EQ(box.capacity(), 1u);
  EXPECT_TRUE(box.send(data_msg(1), 10ms));
  EXPECT_FALSE(box.send(data_msg(2), 10ms));
}

TEST(Mailbox, TrySendSucceedsWhileFree) {
  Mailbox box(2);
  EXPECT_TRUE(box.try_send(data_msg(1)));
  EXPECT_TRUE(box.try_send(data_msg(2)));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, TrySendFullUnderBasDoesNotCountADrop) {
  // BAS: the caller is expected to fall back to the blocking send(), so a
  // failed try_send is not a loss.
  Mailbox box(1, OverflowPolicy::kBlockAfterService);
  ASSERT_TRUE(box.try_send(data_msg(0)));
  EXPECT_FALSE(box.try_send(data_msg(1)));
  EXPECT_EQ(box.dropped(), 0u);
  EXPECT_EQ(box.size(), 1u);
}

TEST(Mailbox, TrySendFullUnderSheddingCountsTheDrop) {
  Mailbox box(1, OverflowPolicy::kShedNewest);
  ASSERT_TRUE(box.try_send(data_msg(0)));
  EXPECT_FALSE(box.try_send(data_msg(1)));  // shed, exactly like send()
  EXPECT_EQ(box.dropped(), 1u);
}

TEST(Mailbox, TrySendClosedFailsWithoutCounting) {
  Mailbox box(4);
  box.close();
  EXPECT_FALSE(box.try_send(data_msg(1)));
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, UnboundedSendOnClosedBoxCountsTheDrop) {
  Mailbox box(4);
  box.close();
  box.send_unbounded(Message::shutdown());
  EXPECT_EQ(box.size(), 0u);  // nothing enqueued behind a closed box
  EXPECT_EQ(box.dropped(), 1u);
}

TEST(MailboxDrain, TakesUpToBatchInFifoOrder) {
  Mailbox box(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(box.send(data_msg(i), 1s));
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 4), 4u);
  EXPECT_EQ(box.drain(batch, 64), 6u);  // appends the remainder
  ASSERT_EQ(batch.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(batch[static_cast<std::size_t>(i)].tuple.id, i);
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxDrain, InterleavedWithSendsNeverReorders) {
  // Producer bursts interleaved with partial drains: the two-queue swap
  // must still present a single FIFO stream across refills.
  Mailbox box(64);
  std::vector<Message> batch;
  std::int64_t next_in = 0;
  std::int64_t next_out = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(box.try_send(data_msg(next_in++)));
    batch.clear();
    box.drain(batch, 3);  // partial: leaves messages behind in the outbox
    if ((round % 2) != 0) box.send_unbounded(Message::shutdown());
    for (const Message& m : batch) {
      if (m.kind == Message::Kind::kData) EXPECT_EQ(m.tuple.id, next_out++);
    }
  }
  batch.clear();
  box.drain(batch, 1024);
  for (const Message& m : batch) {
    if (m.kind == Message::Kind::kData) EXPECT_EQ(m.tuple.id, next_out++);
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(MailboxDrain, EmptyBoxYieldsNothing) {
  Mailbox box(4);
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 64), 0u);
  EXPECT_TRUE(batch.empty());
}

TEST(MailboxDrain, CloseThenDrainReturnsRemainderThenNothing) {
  Mailbox box(8);
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  ASSERT_TRUE(box.send(data_msg(2), 1s));
  box.close();
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 64), 2u);  // close drains, it does not discard
  EXPECT_EQ(box.drain(batch, 64), 0u);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(MailboxDrain, SendAfterCloseIsCountedNotDrained) {
  Mailbox box(8);
  box.close();
  box.send_unbounded(Message::shutdown());  // exact closed-drop accounting
  EXPECT_FALSE(box.try_send(data_msg(1)));
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 64), 0u);
  EXPECT_EQ(box.dropped(), 1u);  // only the unbounded send counts a loss
}

TEST(MailboxDrain, FreesCapacitySoBlockedSenderResumes) {
  Mailbox box(2);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  std::thread producer([&] { EXPECT_TRUE(box.send(data_msg(2), 5s)); });
  std::this_thread::sleep_for(20ms);  // let the producer block (BAS)
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 64), 2u);  // releases both slots at once
  producer.join();
  batch.clear();
  ASSERT_EQ(box.drain(batch, 64), 1u);
  EXPECT_EQ(batch[0].tuple.id, 2);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(MailboxDrain, DeferredReleaseHoldsCapacityUntilReleased) {
  Mailbox box(2);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  std::vector<Message> batch;
  // release_now=false: messages leave the queue but keep their slots, so
  // BAS still sees a full box (capacity B, not B + batch).
  EXPECT_EQ(box.drain(batch, 64, /*release_now=*/false), 2u);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_FALSE(box.try_send(data_msg(2)));
  box.release(1);  // first message enters service
  EXPECT_EQ(box.size(), 1u);
  EXPECT_TRUE(box.try_send(data_msg(3)));
  EXPECT_FALSE(box.try_send(data_msg(4)));  // back at capacity
  box.release(1);
  EXPECT_EQ(box.size(), 1u);
}

TEST(MailboxDrain, ReleaseWakesSenderBlockedAcrossDeferredDrain) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::thread producer([&] { EXPECT_TRUE(box.send(data_msg(1), 5s)); });
  std::this_thread::sleep_for(20ms);  // let the producer block (BAS)
  std::vector<Message> batch;
  ASSERT_EQ(box.drain(batch, 64, /*release_now=*/false), 1u);
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(box.size(), 1u);  // still blocked: slot not freed yet
  box.release(1);             // frees the slot and wakes the sender
  producer.join();
  batch.clear();
  ASSERT_EQ(box.drain(batch, 64), 1u);
  EXPECT_EQ(batch[0].tuple.id, 1);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(MailboxDrain, ConcurrentProducersLoseNothing) {
  Mailbox box(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.send(data_msg(p * kPerProducer + i), std::chrono::seconds(10)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::vector<Message> batch;
  int received = 0;
  while (received < kProducers * kPerProducer) {
    batch.clear();
    const std::size_t n = box.drain(batch, 16);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(batch[i].tuple.id)]) << "duplicate";
      seen[static_cast<std::size_t>(batch[i].tuple.id)] = true;
    }
    received += static_cast<int>(n);
    if (n == 0) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  for (bool b : seen) EXPECT_TRUE(b);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, OnReadyFiresOnlyOnEmptyToNonEmptyEdge) {
  Mailbox box(4);
  int readies = 0;
  box.set_on_ready([&] { ++readies; });
  ASSERT_TRUE(box.send(data_msg(1), 1s));  // empty -> non-empty: fires
  ASSERT_TRUE(box.try_send(data_msg(2)));  // non-empty: silent
  box.send_unbounded(Message::shutdown());
  EXPECT_EQ(readies, 1);
  Message out;
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.receive(out));  // drained again
  ASSERT_TRUE(box.try_send(data_msg(3)));  // new edge: fires again
  EXPECT_EQ(readies, 2);
}

TEST(Mailbox, OnReadyFiresForEveryEnqueuePath) {
  Mailbox box(4);
  int readies = 0;
  box.set_on_ready([&] { ++readies; });
  Message out;
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.try_send(data_msg(2)));
  ASSERT_TRUE(box.receive(out));
  box.send_unbounded(Message::shutdown());
  EXPECT_EQ(readies, 3);
}

TEST(Mailbox, OnReadyEdgeFiresExactlyOnceAcrossQueueSwap) {
  // After a partial drain the remaining messages sit in the consumer-side
  // outbox; a new send must NOT look like an empty->non-empty edge (the
  // box never emptied), and a full drain must re-arm the edge.
  Mailbox box(8);
  int readies = 0;
  box.set_on_ready([&] { ++readies; });
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(box.send(data_msg(i), 1s));
  EXPECT_EQ(readies, 1);
  std::vector<Message> batch;
  ASSERT_EQ(box.drain(batch, 1), 1u);  // 2 left, now held in the outbox
  ASSERT_TRUE(box.try_send(data_msg(3)));  // inbox empty but box is not
  EXPECT_EQ(readies, 1);
  batch.clear();
  ASSERT_EQ(box.drain(batch, 64), 3u);  // fully drained: edge re-armed
  ASSERT_TRUE(box.try_send(data_msg(4)));
  EXPECT_EQ(readies, 2);
}

TEST(Mailbox, SetOnReadyIsSafeWhileProducersAreLive) {
  // The scheduler installs its hand-off hook while senders may already be
  // running; swapping the hook mid-stream must never tear (the TSAN CI
  // job runs this) and every edge must land on whichever hook is current.
  Mailbox box(4096);
  std::atomic<int> a_fires{0};
  std::atomic<int> b_fires{0};
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::int64_t id = 0;
    while (!stop.load(std::memory_order_acquire)) {
      box.send_unbounded(data_msg(id++));
      Message out;
      (void)box.try_receive(out);  // keep crossing the empty edge
    }
  });
  for (int i = 0; i < 20000; ++i) {
    box.set_on_ready([&a_fires] { a_fires.fetch_add(1, std::memory_order_relaxed); });
    box.set_on_ready([&b_fires] { b_fires.fetch_add(1, std::memory_order_relaxed); });
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  // Deterministic tail: with the box drained and the hook settled, the
  // next edge must land on exactly the current hook.
  Message out;
  while (box.try_receive(out)) {
  }
  const int before = b_fires.load();
  box.send_unbounded(data_msg(-1));
  EXPECT_EQ(b_fires.load(), before + 1);
  EXPECT_EQ(box.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Engine parity: the mailbox contract must hold identically on the lock-free
// ring (the default) and the mutex two-queue baseline `--mailbox=mutex` keeps
// alive.  Value-parameterized so neither engine loses coverage.

class MailboxBothKinds : public ::testing::TestWithParam<MailboxKind> {
 protected:
  [[nodiscard]] MailboxKind kind() const { return GetParam(); }
};

TEST_P(MailboxBothKinds, PreservesFifoOrder) {
  Mailbox box(16, OverflowPolicy::kBlockAfterService, kind());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(box.send(data_msg(i), 1s));
  Message out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.receive(out));
    EXPECT_EQ(out.tuple.id, i);
  }
}

TEST_P(MailboxBothKinds, SendTimesOutWhenFullAndCountsTheDrop) {
  Mailbox box(2, OverflowPolicy::kBlockAfterService, kind());
  ASSERT_TRUE(box.send(data_msg(0), 10ms));
  ASSERT_TRUE(box.send(data_msg(1), 10ms));
  EXPECT_FALSE(box.send(data_msg(2), 50ms));
  EXPECT_EQ(box.dropped(), 1u);
  EXPECT_EQ(box.size(), 2u);
}

TEST_P(MailboxBothKinds, BlockedSenderResumesWhenSlotFrees) {
  Mailbox box(1, OverflowPolicy::kBlockAfterService, kind());
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::thread producer([&] { EXPECT_TRUE(box.send(data_msg(1), 5s)); });
  std::this_thread::sleep_for(20ms);  // let the producer block (BAS)
  Message out;
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 0);
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 1);
  producer.join();
  EXPECT_EQ(box.dropped(), 0u);
}

TEST_P(MailboxBothKinds, ShedNewestDropsWhenFull) {
  Mailbox box(2, OverflowPolicy::kShedNewest, kind());
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  EXPECT_FALSE(box.send(data_msg(2), 1s));  // shed immediately, no blocking
  EXPECT_FALSE(box.try_send(data_msg(3)));
  EXPECT_EQ(box.dropped(), 2u);
  EXPECT_EQ(box.size(), 2u);
}

TEST_P(MailboxBothKinds, CloseDrainsThenStops) {
  Mailbox box(8, OverflowPolicy::kBlockAfterService, kind());
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  box.close();
  Message out;
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.receive(out));
  EXPECT_FALSE(box.receive(out));  // closed and drained
  EXPECT_FALSE(box.send(data_msg(2), 1s));
}

TEST_P(MailboxBothKinds, TrySendBatchTakesExactlyTheFittingPrefix) {
  Mailbox box(8, OverflowPolicy::kBlockAfterService, kind());
  ASSERT_TRUE(box.send(data_msg(100), 1s));  // one slot already used
  Message msgs[12];
  for (int i = 0; i < 12; ++i) msgs[i] = data_msg(i);
  EXPECT_EQ(box.try_send_batch(msgs, 12), 7u);  // 8 - 1 slots free
  EXPECT_EQ(box.size(), 8u);
  EXPECT_EQ(box.try_send_batch(msgs, 12), 0u);  // full now
  Message out;
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 100);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(box.receive(out));
    EXPECT_EQ(out.tuple.id, i);  // batch preserved FIFO
  }
  EXPECT_EQ(box.dropped(), 0u);  // rejected suffix is the caller's problem
}

TEST_P(MailboxBothKinds, DeferredDrainHoldsCapacityUntilRelease) {
  Mailbox box(4, OverflowPolicy::kBlockAfterService, kind());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(box.send(data_msg(i), 1s));
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 4, /*release_now=*/false), 4u);
  EXPECT_FALSE(box.try_send(data_msg(9)));  // capacity still held (BAS: B, not B+batch)
  box.release(1);
  EXPECT_TRUE(box.try_send(data_msg(9)));
  box.release(3);
  EXPECT_EQ(box.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, MailboxBothKinds,
                         ::testing::Values(MailboxKind::kMutex, MailboxKind::kRing),
                         [](const ::testing::TestParamInfo<MailboxKind>& info) {
                           return std::string(to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// Ring-specific stress: wraparound, the blocking fallback, spills, shedding
// under contention.  These are the cases the TSAN/ASan CI jobs rerun.

TEST(MailboxRingStress, MultiProducerWraparoundKeepsPerProducerFifo) {
  // 6000 messages through a 16-slot physical ring: hundreds of laps, four
  // producers racing on the slot CAS.  Per-producer order must survive and
  // every message must take the lock-free fast path (capacity credits keep
  // occupancy below the physical slack, so nothing spills).
  constexpr int kProducers = 4;
  constexpr std::int64_t kPerProducer = 1500;
  Mailbox box(8, OverflowPolicy::kBlockAfterService, MailboxKind::kRing);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        Tuple t;
        t.id = i;
        ASSERT_TRUE(box.send(Message::data(t, static_cast<OpIndex>(p), 1), 30s));
      }
    });
  }
  std::int64_t next_id[kProducers] = {};
  Message out;
  for (std::int64_t n = 0; n < kProducers * kPerProducer; ++n) {
    ASSERT_TRUE(box.receive(out));
    const int p = static_cast<int>(out.from);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(out.tuple.id, next_id[p]++) << "producer " << p << " reordered";
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.size(), 0u);
  EXPECT_EQ(box.dropped(), 0u);
  EXPECT_EQ(box.ring_enqueues(), static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(box.ring_spills(), 0u);
}

TEST(MailboxRingStress, FullRingFallsBackToBlockingSendAndLosesNothing) {
  // Tiny capacity forces every producer through the BAS park/wake slow path
  // over and over; the consumer paces itself so the box is full most of the
  // time.  Nothing may be lost or duplicated.
  constexpr int kProducers = 3;
  constexpr std::int64_t kPerProducer = 400;
  Mailbox box(2, OverflowPolicy::kBlockAfterService, MailboxKind::kRing);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        Tuple t;
        t.id = i;
        ASSERT_TRUE(box.send(Message::data(t, static_cast<OpIndex>(p), 1), 30s));
      }
    });
  }
  std::int64_t seen[kProducers] = {};
  Message out;
  for (std::int64_t n = 0; n < kProducers * kPerProducer; ++n) {
    ASSERT_TRUE(box.receive(out));
    ++seen[static_cast<int>(out.from)];
    if (n % 64 == 0) std::this_thread::yield();  // keep senders parking
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(seen[p], kPerProducer);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(MailboxRingStress, CloseWhileFullFailsBlockedSenderAndDrainsBacklog) {
  Mailbox box(1, OverflowPolicy::kBlockAfterService, MailboxKind::kRing);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::atomic<bool> send_result{true};
  std::thread blocked([&] { send_result.store(box.send(data_msg(1), 30s)); });
  std::this_thread::sleep_for(20ms);  // let the sender park on not_full_
  box.close();
  blocked.join();
  EXPECT_FALSE(send_result.load());  // woken by close, not by capacity
  Message out;
  ASSERT_TRUE(box.receive(out));  // the backlog still drains
  EXPECT_EQ(out.tuple.id, 0);
  EXPECT_FALSE(box.receive(out));
}

TEST(MailboxRingStress, ShedAccountingBalancesUnderContention) {
  // kShedNewest with a hot box: delivered + dropped must equal sent exactly
  // — the ledger the scheduler's invariant report builds on.
  constexpr int kProducers = 4;
  constexpr std::int64_t kPerProducer = 2000;
  Mailbox box(4, OverflowPolicy::kShedNewest, MailboxKind::kRing);
  std::atomic<std::int64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        Tuple t;
        t.id = i;
        if (box.send(Message::data(t, static_cast<OpIndex>(p), 1), 1s)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Drain concurrently so producers keep finding free slots *sometimes* —
  // the interesting interleaving is accept/drop racing the consumer.
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> received{0};
  std::thread consumer([&] {
    Message out;
    while (!stop.load(std::memory_order_acquire)) {
      if (box.try_receive(out)) {
        received.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();
  Message out;
  while (box.try_receive(out)) received.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(received.load(), accepted.load());
  EXPECT_EQ(received.load() + static_cast<std::int64_t>(box.dropped()),
            kProducers * kPerProducer);
}

TEST(MailboxRingStress, SpilledUnboundedTokensStayFifoWithLaterSends) {
  // Flood a ring whose physical slots (16 for capacity 2) cannot hold the
  // capacity-exempt burst: the overflow spills to the side queue, and once
  // spilled *every* later enqueue must follow it so per-producer FIFO holds.
  Mailbox box(2, OverflowPolicy::kBlockAfterService, MailboxKind::kRing);
  constexpr std::int64_t kBurst = 40;  // > 16 physical slots
  for (std::int64_t i = 0; i < kBurst; ++i) box.send_unbounded(data_msg(i));
  EXPECT_GT(box.ring_spills(), 0u);
  // A later bounded try_send must queue *behind* the spill, not jump it.
  // (Capacity 2 with 40 unbounded items in flight: the credit counter is
  // far above capacity, so bounded sends are rejected — use unbounded.)
  box.send_unbounded(data_msg(kBurst));
  Message out;
  for (std::int64_t i = 0; i <= kBurst; ++i) {
    ASSERT_TRUE(box.receive(out));
    EXPECT_EQ(out.tuple.id, i);
  }
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxRingStress, SpillDrainReopensTheFastPath) {
  Mailbox box(2, OverflowPolicy::kBlockAfterService, MailboxKind::kRing);
  for (std::int64_t i = 0; i < 40; ++i) box.send_unbounded(data_msg(i));
  const std::uint64_t spilled = box.ring_spills();
  EXPECT_GT(spilled, 0u);
  Message out;
  for (std::int64_t i = 0; i < 40; ++i) ASSERT_TRUE(box.receive(out));
  // Spill queue empty again: new traffic goes back to the lock-free ring.
  const std::uint64_t fast_before = box.ring_enqueues();
  ASSERT_TRUE(box.try_send(data_msg(99)));
  EXPECT_EQ(box.ring_enqueues(), fast_before + 1);
  EXPECT_EQ(box.ring_spills(), spilled);
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 99);
}

}  // namespace
}  // namespace ss::runtime
