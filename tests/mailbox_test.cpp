// Unit tests for the bounded blocking mailbox (BAS semantics, send timeout,
// shutdown tokens bypassing the bound, close/drain behaviour).
#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace ss::runtime {
namespace {

using namespace std::chrono_literals;

Message data_msg(std::int64_t id) {
  Tuple t;
  t.id = id;
  return Message::data(t, 0, 1);
}

TEST(Mailbox, SendReceiveRoundTrip) {
  Mailbox box(4);
  EXPECT_TRUE(box.send(data_msg(7), 1s));
  Message out;
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 7);
  EXPECT_EQ(out.kind, Message::Kind::kData);
}

TEST(Mailbox, PreservesFifoOrder) {
  Mailbox box(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(box.send(data_msg(i), 1s));
  Message out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.receive(out));
    EXPECT_EQ(out.tuple.id, i);
  }
}

TEST(Mailbox, SendTimesOutWhenFull) {
  Mailbox box(2);
  ASSERT_TRUE(box.send(data_msg(0), 10ms));
  ASSERT_TRUE(box.send(data_msg(1), 10ms));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.send(data_msg(2), 50ms));  // full: blocks then drops
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 45ms);
  EXPECT_EQ(box.dropped(), 1u);
  EXPECT_EQ(box.size(), 2u);
}

TEST(Mailbox, BlockedSenderResumesWhenSlotFrees) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::thread producer([&] { EXPECT_TRUE(box.send(data_msg(1), 5s)); });
  std::this_thread::sleep_for(20ms);  // let the producer block (BAS)
  Message out;
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 0);
  producer.join();
  ASSERT_TRUE(box.receive(out));
  EXPECT_EQ(out.tuple.id, 1);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, UnboundedSendBypassesCapacity) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 10ms));
  box.send_unbounded(Message::shutdown());  // must not block even when full
  EXPECT_EQ(box.size(), 2u);
}

TEST(Mailbox, ReceiverBlocksUntilMessageArrives) {
  Mailbox box(4);
  Message out;
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_TRUE(box.send(data_msg(42), 1s));
  });
  ASSERT_TRUE(box.receive(out));  // blocks until the producer delivers
  EXPECT_EQ(out.tuple.id, 42);
  producer.join();
}

TEST(Mailbox, CloseDrainsThenStops) {
  Mailbox box(4);
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  ASSERT_TRUE(box.send(data_msg(2), 1s));
  box.close();
  Message out;
  EXPECT_TRUE(box.receive(out));
  EXPECT_TRUE(box.receive(out));
  EXPECT_FALSE(box.receive(out));  // closed and drained
}

TEST(Mailbox, CloseRejectsFurtherSends) {
  Mailbox box(4);
  box.close();
  EXPECT_FALSE(box.send(data_msg(1), 10ms));
}

TEST(Mailbox, CloseWakesBlockedSender) {
  Mailbox box(1);
  ASSERT_TRUE(box.send(data_msg(0), 1s));
  std::thread producer([&] { EXPECT_FALSE(box.send(data_msg(1), 5s)); });
  std::this_thread::sleep_for(20ms);
  box.close();
  producer.join();  // returns promptly rather than waiting the 5s timeout
}

TEST(Mailbox, ConcurrentProducersDeliverEverything) {
  Mailbox box(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.send(data_msg(p * kPerProducer + i), std::chrono::seconds(10)));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  Message out;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_TRUE(box.receive(out));
    seen[static_cast<std::size_t>(out.tuple.id)] = true;
  }
  for (std::thread& t : producers) t.join();
  for (bool b : seen) EXPECT_TRUE(b);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, TryReceiveNonBlocking) {
  Mailbox box(4);
  Message out;
  EXPECT_FALSE(box.try_receive(out));
  ASSERT_TRUE(box.send(data_msg(5), 1s));
  EXPECT_TRUE(box.try_receive(out));
  EXPECT_EQ(out.tuple.id, 5);
}

TEST(Mailbox, ZeroCapacityIsClampedToOne) {
  Mailbox box(0);
  EXPECT_EQ(box.capacity(), 1u);
  EXPECT_TRUE(box.send(data_msg(1), 10ms));
  EXPECT_FALSE(box.send(data_msg(2), 10ms));
}

TEST(Mailbox, TrySendSucceedsWhileFree) {
  Mailbox box(2);
  EXPECT_TRUE(box.try_send(data_msg(1)));
  EXPECT_TRUE(box.try_send(data_msg(2)));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, TrySendFullUnderBasDoesNotCountADrop) {
  // BAS: the caller is expected to fall back to the blocking send(), so a
  // failed try_send is not a loss.
  Mailbox box(1, OverflowPolicy::kBlockAfterService);
  ASSERT_TRUE(box.try_send(data_msg(0)));
  EXPECT_FALSE(box.try_send(data_msg(1)));
  EXPECT_EQ(box.dropped(), 0u);
  EXPECT_EQ(box.size(), 1u);
}

TEST(Mailbox, TrySendFullUnderSheddingCountsTheDrop) {
  Mailbox box(1, OverflowPolicy::kShedNewest);
  ASSERT_TRUE(box.try_send(data_msg(0)));
  EXPECT_FALSE(box.try_send(data_msg(1)));  // shed, exactly like send()
  EXPECT_EQ(box.dropped(), 1u);
}

TEST(Mailbox, TrySendClosedFailsWithoutCounting) {
  Mailbox box(4);
  box.close();
  EXPECT_FALSE(box.try_send(data_msg(1)));
  EXPECT_EQ(box.dropped(), 0u);
}

TEST(Mailbox, UnboundedSendOnClosedBoxCountsTheDrop) {
  Mailbox box(4);
  box.close();
  box.send_unbounded(Message::shutdown());
  EXPECT_EQ(box.size(), 0u);  // nothing enqueued behind a closed box
  EXPECT_EQ(box.dropped(), 1u);
}

TEST(Mailbox, OnReadyFiresOnlyOnEmptyToNonEmptyEdge) {
  Mailbox box(4);
  int readies = 0;
  box.set_on_ready([&] { ++readies; });
  ASSERT_TRUE(box.send(data_msg(1), 1s));  // empty -> non-empty: fires
  ASSERT_TRUE(box.try_send(data_msg(2)));  // non-empty: silent
  box.send_unbounded(Message::shutdown());
  EXPECT_EQ(readies, 1);
  Message out;
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.receive(out));  // drained again
  ASSERT_TRUE(box.try_send(data_msg(3)));  // new edge: fires again
  EXPECT_EQ(readies, 2);
}

TEST(Mailbox, OnReadyFiresForEveryEnqueuePath) {
  Mailbox box(4);
  int readies = 0;
  box.set_on_ready([&] { ++readies; });
  Message out;
  ASSERT_TRUE(box.send(data_msg(1), 1s));
  ASSERT_TRUE(box.receive(out));
  ASSERT_TRUE(box.try_send(data_msg(2)));
  ASSERT_TRUE(box.receive(out));
  box.send_unbounded(Message::shutdown());
  EXPECT_EQ(readies, 3);
}

}  // namespace
}  // namespace ss::runtime
