// Unit tests for the flow-graph model: Topology::Builder constraints,
// structural queries, and the non-throwing validate_draft() reports.
#include "core/topology.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/validate.hpp"

namespace ss {
namespace {

Topology make_diamond() {
  // src -> a (0.4), src -> b (0.6), a -> sink, b -> sink
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 2e-3);
  b.add_operator("b", 3e-3);
  b.add_operator("sink", 0.5e-3);
  b.add_edge(0, 1, 0.4);
  b.add_edge(0, 2, 0.6);
  b.add_edge(1, 3, 1.0);
  b.add_edge(2, 3, 1.0);
  return b.build();
}

TEST(TopologyBuilder, BuildsValidDiamond) {
  Topology t = make_diamond();
  EXPECT_EQ(t.num_operators(), 4u);
  EXPECT_EQ(t.num_edges(), 4u);
  EXPECT_EQ(t.source(), 0u);
  ASSERT_EQ(t.sinks().size(), 1u);
  EXPECT_EQ(t.sinks()[0], 3u);
}

TEST(TopologyBuilder, RolesAreDerivedFromEdges) {
  Topology t = make_diamond();
  EXPECT_EQ(t.role(0), OpRole::kSource);
  EXPECT_EQ(t.role(1), OpRole::kInner);
  EXPECT_EQ(t.role(2), OpRole::kInner);
  EXPECT_EQ(t.role(3), OpRole::kSink);
}

TEST(TopologyBuilder, TopologicalOrderStartsAtSource) {
  Topology t = make_diamond();
  const auto& order = t.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), t.source());
  // Every edge must go forward in the order.
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const Edge& e : t.edges()) EXPECT_LT(position[e.from], position[e.to]);
}

TEST(TopologyBuilder, EdgeProbabilityLookup) {
  Topology t = make_diamond();
  EXPECT_DOUBLE_EQ(t.edge_probability(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(t.edge_probability(0, 2), 0.6);
  EXPECT_DOUBLE_EQ(t.edge_probability(1, 2), 0.0);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_FALSE(t.has_edge(3, 0));
}

TEST(TopologyBuilder, FindByName) {
  Topology t = make_diamond();
  ASSERT_TRUE(t.find("b").has_value());
  EXPECT_EQ(*t.find("b"), 2u);
  EXPECT_FALSE(t.find("nope").has_value());
}

TEST(TopologyBuilder, RejectsEmptyTopology) {
  Topology::Builder b;
  EXPECT_THROW((void)b.build(), Error);
}

TEST(TopologyBuilder, RejectsDuplicateNames) {
  Topology::Builder b;
  b.add_operator("x", 1e-3);
  EXPECT_THROW(b.add_operator("x", 1e-3), Error);
}

TEST(TopologyBuilder, RejectsNonPositiveServiceTime) {
  Topology::Builder b;
  EXPECT_THROW(b.add_operator("x", 0.0), Error);
  EXPECT_THROW(b.add_operator("y", -1.0), Error);
}

TEST(TopologyBuilder, RejectsSelfLoop) {
  Topology::Builder b;
  b.add_operator("x", 1e-3);
  EXPECT_THROW(b.add_edge(0, 0), Error);
}

TEST(TopologyBuilder, RejectsDuplicateEdge) {
  Topology::Builder b;
  b.add_operator("x", 1e-3);
  b.add_operator("y", 1e-3);
  b.add_edge(0, 1, 0.5);
  EXPECT_THROW(b.add_edge(0, 1, 0.5), Error);
}

TEST(TopologyBuilder, RejectsOutOfRangeEdge) {
  Topology::Builder b;
  b.add_operator("x", 1e-3);
  EXPECT_THROW(b.add_edge(0, 7), Error);
}

TEST(TopologyBuilder, RejectsCycle) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 0.5);
  b.add_edge(1, 0, 0.5);  // back to the source: cycle AND a second root issue
  EXPECT_THROW((void)b.build(), Error);
}

TEST(TopologyBuilder, RejectsMultipleSources) {
  Topology::Builder b;
  b.add_operator("s1", 1e-3);
  b.add_operator("s2", 1e-3);
  b.add_operator("sink", 1e-3);
  b.add_edge(0, 2, 1.0);
  b.add_edge(1, 2, 1.0);
  EXPECT_THROW((void)b.build(), Error);
}

TEST(TopologyBuilder, RejectsUnreachableOperator) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("island_in", 1e-3);
  b.add_operator("island_out", 1e-3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);  // island: 2 is a second source too
  EXPECT_THROW((void)b.build(), Error);
}

TEST(TopologyBuilder, RejectsBadProbabilitySum) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.3);  // sums to 0.8
  EXPECT_THROW((void)b.build(), Error);
}

TEST(TopologyBuilder, RejectsProbabilityOutOfRange) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  EXPECT_THROW(b.add_edge(0, 1, 0.0), Error);
  EXPECT_THROW(b.add_edge(0, 1, 1.5), Error);
  EXPECT_THROW(b.add_edge(0, 1, -0.2), Error);
}

TEST(TopologyBuilder, NormalizeProbabilitiesRescalesFanOuts) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_edge(0, 1, 0.2);
  b.add_edge(0, 2, 0.6);
  b.normalize_probabilities();
  Topology t = b.build();
  EXPECT_NEAR(t.edge_probability(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(t.edge_probability(0, 2), 0.75, 1e-12);
}

TEST(TopologyBuilder, PartitionedStatefulRequiresKeys) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  OperatorSpec spec;
  spec.name = "agg";
  spec.service_time = 1e-3;
  spec.state = StateKind::kPartitionedStateful;
  b.add_operator(std::move(spec));
  b.add_edge(0, 1, 1.0);
  EXPECT_THROW((void)b.build(), Error);
}

TEST(TopologyBuilder, PartitionedStatefulWithKeysBuilds) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  OperatorSpec spec;
  spec.name = "agg";
  spec.service_time = 1e-3;
  spec.state = StateKind::kPartitionedStateful;
  spec.keys = KeyDistribution::uniform(8);
  b.add_operator(std::move(spec));
  b.add_edge(0, 1, 1.0);
  Topology t = b.build();
  EXPECT_EQ(t.op(1).keys.num_keys(), 8u);
}

TEST(TopologyBuilder, FictitiousSourceUnifiesMultipleRoots) {
  Topology::Builder b;
  b.add_operator("s1", 1e-3);  // rate 1000
  b.add_operator("s2", 2e-3);  // rate 500
  b.add_operator("sink", 1e-4);
  b.add_edge(0, 2, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_fictitious_source(0.5e-3);
  Topology t = b.build();
  ASSERT_EQ(t.num_operators(), 4u);
  EXPECT_EQ(t.source(), 3u);
  // Split proportional to the roots' rates: 1000:500 -> 2/3, 1/3.
  EXPECT_NEAR(t.edge_probability(3, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.edge_probability(3, 1), 1.0 / 3.0, 1e-12);
}

TEST(TopologyBuilder, FictitiousSourceIsNoOpOnSingleRoot) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("sink", 1e-3);
  b.add_edge(0, 1, 1.0);
  b.add_fictitious_source(1e-3);
  Topology t = b.build();
  EXPECT_EQ(t.num_operators(), 2u);
}

TEST(TopologicalSort, DetectsCycle) {
  std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  EXPECT_FALSE(topological_sort(3, edges).has_value());
}

TEST(TopologicalSort, DeterministicTieBreak) {
  std::vector<Edge> edges{{0, 2, 1.0}, {1, 2, 1.0}};
  auto order = topological_sort(3, edges);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<OpIndex>{0, 1, 2}));
}

TEST(StateKindNames, RoundTrip) {
  for (StateKind kind : {StateKind::kStateless, StateKind::kPartitionedStateful,
                         StateKind::kStateful}) {
    EXPECT_EQ(state_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(state_kind_from_string("partitioned-stateful"), StateKind::kPartitionedStateful);
  EXPECT_THROW(state_kind_from_string("bogus"), Error);
}

// ---------------------------------------------------------------- validate

TEST(ValidateDraft, AcceptsValidDraft) {
  Topology t = make_diamond();
  ValidationReport report = validate_draft(t.operators(), t.edges());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateDraft, CollectsMultipleErrors) {
  std::vector<OperatorSpec> ops(2);
  ops[0].name = "a";
  ops[0].service_time = -1.0;  // error 1
  ops[1].name = "a";           // error 2: duplicate name
  ops[1].service_time = 1.0;
  std::vector<Edge> edges{{0, 0, 1.0}};  // error 3: self-loop (+ cycle/unreachable)
  ValidationReport report = validate_draft(ops, edges);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 3u);
}

TEST(ValidateDraft, ReportsProbabilitySumError) {
  Topology t = make_diamond();
  std::vector<Edge> edges = t.edges();
  edges[0].probability = 0.1;  // 0.1 + 0.6 != 1
  ValidationReport report = validate_draft(t.operators(), edges);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("probabilities"), std::string::npos);
}

TEST(ValidateDraft, WarnsOnUnusedKeyDistribution) {
  std::vector<OperatorSpec> ops(2);
  ops[0].name = "src";
  ops[0].service_time = 1.0;
  ops[1].name = "map";
  ops[1].service_time = 1.0;
  ops[1].keys = KeyDistribution::uniform(4);  // stateless but carries keys
  std::vector<Edge> edges{{0, 1, 1.0}};
  ValidationReport report = validate_draft(ops, edges);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(ValidateDraft, ReportsMultipleSourcesWithNames) {
  std::vector<OperatorSpec> ops(3);
  ops[0].name = "s1";
  ops[1].name = "s2";
  ops[2].name = "sink";
  for (auto& op : ops) op.service_time = 1.0;
  std::vector<Edge> edges{{0, 2, 1.0}, {1, 2, 1.0}};
  ValidationReport report = validate_draft(ops, edges);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("s1"), std::string::npos);
  EXPECT_NE(report.to_string().find("s2"), std::string::npos);
}

TEST(ValidateDraft, ReportsOutOfRangeEdgeWithoutCrashing) {
  std::vector<OperatorSpec> ops(1);
  ops[0].name = "src";
  ops[0].service_time = 1.0;
  std::vector<Edge> edges{{0, 5, 1.0}};
  ValidationReport report = validate_draft(ops, edges);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace ss
