// Tests of the simulator's service-time laws: correct means, correct
// shapes (variance), positivity, and determinism per seed.
#include "sim/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ss::sim {
namespace {

struct Moments {
  double mean = 0.0;
  double variance = 0.0;
};

Moments sample_moments(const ServiceLaw& law, double mean, int draws, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(draws));
  for (int i = 0; i < draws; ++i) values.push_back(law.sample(mean, rng));
  Moments m;
  for (double v : values) m.mean += v;
  m.mean /= draws;
  for (double v : values) m.variance += (v - m.mean) * (v - m.mean);
  m.variance /= draws;
  return m;
}

constexpr int kDraws = 200000;
constexpr double kMean = 2.5e-3;

TEST(ServiceLaw, DeterministicIsExact) {
  const ServiceLaw law = ServiceLaw::deterministic();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(law.sample(kMean, rng), kMean);
}

TEST(ServiceLaw, ExponentialMeanAndVariance) {
  const Moments m = sample_moments(ServiceLaw::exponential(), kMean, kDraws, 7);
  EXPECT_NEAR(m.mean, kMean, 0.02 * kMean);
  // Exponential: variance = mean^2.
  EXPECT_NEAR(m.variance, kMean * kMean, 0.06 * kMean * kMean);
}

TEST(ServiceLaw, NormalMeanAndCv) {
  const Moments m = sample_moments(ServiceLaw::normal(0.2), kMean, kDraws, 11);
  EXPECT_NEAR(m.mean, kMean, 0.02 * kMean);
  EXPECT_NEAR(std::sqrt(m.variance) / m.mean, 0.2, 0.02);
}

TEST(ServiceLaw, LogNormalMeanAndCv) {
  // Parameterized so the distribution mean equals the requested mean.
  const Moments m = sample_moments(ServiceLaw::lognormal(0.5), kMean, kDraws, 13);
  EXPECT_NEAR(m.mean, kMean, 0.03 * kMean);
  EXPECT_NEAR(std::sqrt(m.variance) / m.mean, 0.5, 0.05);
}

TEST(ServiceLaw, SamplesAreAlwaysPositive) {
  for (const ServiceLaw& law :
       {ServiceLaw::exponential(), ServiceLaw::normal(1.5), ServiceLaw::lognormal(2.0)}) {
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_GT(law.sample(kMean, rng), 0.0);
    }
  }
}

TEST(ServiceLaw, DeterministicPerSeed) {
  const ServiceLaw law = ServiceLaw::lognormal(0.7);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(law.sample(kMean, a), law.sample(kMean, b));
}

}  // namespace
}  // namespace ss::sim
