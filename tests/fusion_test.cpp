// Unit tests for operator fusion (Algorithm 3): legality rules, the fused
// service time on the paper's Fig. 11 / Table 1-2 example, edge merging with
// joint probabilities, selectivity-aware extensions, and candidate
// suggestion ranking.
#include "core/fusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

Topology fig11_topology(const std::vector<double>& service_ms) {
  Topology::Builder b;
  const char* names[] = {"op1", "op2", "op3", "op4", "op5", "op6"};
  for (int i = 0; i < 6; ++i) b.add_operator(names[i], service_ms[i] * kMs);
  b.add_edge(0, 1, 0.7);
  b.add_edge(0, 2, 0.3);
  b.add_edge(1, 5, 1.0);
  b.add_edge(2, 3, 2.0 / 3.0);
  b.add_edge(2, 4, 1.0 / 3.0);
  b.add_edge(3, 4, 0.25);
  b.add_edge(3, 5, 0.75);
  b.add_edge(4, 5, 1.0);
  return b.build();
}

// ------------------------------------------------------------- legality

TEST(FusionLegality, AcceptsTheFig11SubGraph) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  EXPECT_EQ(check_fusion_legal(t, FusionSpec{{2, 3, 4}, {}}), "");
}

TEST(FusionLegality, RejectsSingletons) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  EXPECT_NE(check_fusion_legal(t, FusionSpec{{3}, {}}), "");
  EXPECT_NE(check_fusion_legal(t, FusionSpec{{}, {}}), "");
}

TEST(FusionLegality, RejectsTheSource) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  EXPECT_NE(check_fusion_legal(t, FusionSpec{{0, 1}, {}}), "");
}

TEST(FusionLegality, RejectsMultipleFrontEnds) {
  // {op2, op3}: both receive from op1 -> two front-ends.
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  const std::string why = check_fusion_legal(t, FusionSpec{{1, 2}, {}});
  EXPECT_NE(why.find("front-end"), std::string::npos) << why;
}

TEST(FusionLegality, RejectsMembersUnreachableFromFrontEnd) {
  // {op4, op5} in Fig.11: op4 is the only member with external input (from
  // op3)?  No: op5 also receives from op1 and op3 externally -> multiple
  // front-ends.  Build a dedicated case: src -> a -> c, src -> b -> c with
  // spec {a, b}: b is not reachable from a and has external input.
  Topology::Builder builder;
  builder.add_operator("src", 1 * kMs);
  builder.add_operator("a", 1 * kMs);
  builder.add_operator("b", 1 * kMs);
  builder.add_operator("c", 1 * kMs);
  builder.add_edge(0, 1, 0.5);
  builder.add_edge(0, 2, 0.5);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  Topology t = builder.build();
  EXPECT_NE(check_fusion_legal(t, FusionSpec{{1, 2}, {}}), "");
}

TEST(FusionLegality, RejectsSubGraphsWithReentrantExternalPaths) {
  // src -> a -> x -> b plus a -> b: fusing {a, b} would route x's output
  // back into the fused operator that feeds x.  With the single-front-end
  // rule this surfaces as a second front-end (b receives externally from
  // x); the contraction-acyclicity check is defense-in-depth behind it.
  Topology::Builder builder;
  builder.add_operator("src", 1 * kMs);
  builder.add_operator("a", 1 * kMs);
  builder.add_operator("x", 1 * kMs);
  builder.add_operator("b", 1 * kMs);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2, 0.5);
  builder.add_edge(1, 3, 0.5);
  builder.add_edge(2, 3);
  Topology t = builder.build();
  EXPECT_NE(check_fusion_legal(t, FusionSpec{{1, 3}, {}}), "");
}

TEST(FusionLegality, RejectsOutOfRangeMembers) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  EXPECT_NE(check_fusion_legal(t, FusionSpec{{2, 99}, {}}), "");
  EXPECT_THROW((void)fusion_service_time(t, FusionSpec{{2, 99}, {}}), Error);
}

// --------------------------------------------------- Table 1 / Table 2

TEST(FusionServiceTime, Table1PredictsAbout2_80Ms) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  const double fused = fusion_service_time(t, FusionSpec{{2, 3, 4}, {}});
  // Exact value 0.7 + (2/3)(2.0 + 0.25*1.5) + (1/3)*1.5 = 2.7833 ms, which
  // the paper reports as "2.80 ms on average".
  EXPECT_NEAR(fused, 2.7833e-3, 1e-6);
}

TEST(FusionServiceTime, Table2PredictsAbout4_42Ms) {
  Topology t = fig11_topology({1.0, 1.2, 1.5, 2.7, 2.2, 0.2});
  const double fused = fusion_service_time(t, FusionSpec{{2, 3, 4}, {}});
  // 1.5 + (2/3)(2.7 + 0.25*2.2) + (1/3)*2.2 = 4.4 ms ("about 4.42 ms").
  EXPECT_NEAR(fused, 4.4e-3, 1e-6);
}

TEST(ApplyFusion, Table1FusionIsFeasible) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  FusionResult result = apply_fusion(t, FusionSpec{{2, 3, 4}, "F"});
  EXPECT_FALSE(result.introduces_bottleneck);
  EXPECT_NEAR(result.throughput_before, 1000.0, 1e-6);
  EXPECT_NEAR(result.throughput_after, 1000.0, 1e-6);
  // Table 1 bottom: rho of F = 0.84 (lambda_F = 300/s, mu_F = 1/2.78ms).
  EXPECT_NEAR(result.analysis.rates[result.fused_index].utilization, 0.3e0 * 2.7833, 1e-3);
}

TEST(ApplyFusion, Table2FusionIntroducesBottleneck) {
  Topology t = fig11_topology({1.0, 1.2, 1.5, 2.7, 2.2, 0.2});
  FusionResult result = apply_fusion(t, FusionSpec{{2, 3, 4}, "F"});
  EXPECT_TRUE(result.introduces_bottleneck);
  // Table 2 bottom: rho_F = 1.0, rho_1 = 0.75-0.76, throughput ~ 760/s
  // (exactly 1000 / (0.3 * 4.4) = 757.6 with the exact probabilities).
  EXPECT_NEAR(result.throughput_after, 1000.0 / (0.3 * 4.4), 1e-3);
  EXPECT_NEAR(result.analysis.rates[0].utilization, 0.7576, 1e-3);
  EXPECT_NEAR(result.analysis.rates[result.fused_index].utilization, 1.0, 1e-9);
  // delta^-1 of op2 after fusion: 1.90 ms (Table 2).
  EXPECT_NEAR(1e3 / result.analysis.rates[1].departure, 1.886, 1e-2);
}

TEST(ApplyFusion, TopologyShapeAfterFusion) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  FusionResult result = apply_fusion(t, FusionSpec{{2, 3, 4}, "F"});
  const Topology& fused = result.topology;
  ASSERT_EQ(fused.num_operators(), 4u);
  ASSERT_TRUE(fused.find("F").has_value());
  EXPECT_EQ(result.fused_index, *fused.find("F"));
  // Remap: members 2,3,4 -> F; others keep relative order.
  EXPECT_EQ(result.remap[0], *fused.find("op1"));
  EXPECT_EQ(result.remap[1], *fused.find("op2"));
  EXPECT_EQ(result.remap[2], result.fused_index);
  EXPECT_EQ(result.remap[3], result.fused_index);
  EXPECT_EQ(result.remap[4], result.fused_index);
  EXPECT_EQ(result.remap[5], *fused.find("op6"));
  // All of F's external flow converges on op6 with probability 1.
  EXPECT_NEAR(fused.edge_probability(result.fused_index, result.remap[5]), 1.0, 1e-12);
  // The fused operator is not replicable (meta, paper §4.2).
  EXPECT_EQ(fused.op(result.fused_index).state, StateKind::kStateful);
  EXPECT_EQ(fused.op(result.fused_index).impl, "meta");
}

TEST(ApplyFusion, MergesParallelExternalEdgesWithJointProbability) {
  // src -> a; a -> {b (0.5), c (0.5)}; b -> d, c -> d, c -> e (0.4/0.6).
  // Fusing {a, b, c}: external edges to d from both b and c must merge.
  Topology::Builder builder;
  builder.add_operator("src", 1 * kMs);
  builder.add_operator("a", 1 * kMs);
  builder.add_operator("b", 1 * kMs);
  builder.add_operator("c", 1 * kMs);
  builder.add_operator("d", 1 * kMs);
  builder.add_operator("e", 1 * kMs);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2, 0.5);
  builder.add_edge(1, 3, 0.5);
  builder.add_edge(2, 4, 1.0);
  builder.add_edge(3, 4, 0.4);
  builder.add_edge(3, 5, 0.6);
  Topology t = builder.build();

  FusionResult result = apply_fusion(t, FusionSpec{{1, 2, 3}, "F"});
  const Topology& fused = result.topology;
  // Flow to d: 0.5 * 1.0 + 0.5 * 0.4 = 0.7; to e: 0.5 * 0.6 = 0.3.
  EXPECT_NEAR(fused.edge_probability(result.fused_index, result.remap[4]), 0.7, 1e-12);
  EXPECT_NEAR(fused.edge_probability(result.fused_index, result.remap[5]), 0.3, 1e-12);
}

TEST(FusionOutputGain, UnitSelectivityGivesUnitGain) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  EXPECT_NEAR(fusion_output_gain(t, FusionSpec{{2, 3, 4}, {}}), 1.0, 1e-12);
}

TEST(FusionWithSelectivity, GainCompoundsThroughMembers) {
  // src -> a (flatmap x2) -> b (filter 0.5) -> sink; fusing {a, b}:
  // gain = 2 * 0.5 = 1, service time = Ta + 2 * Tb.
  Topology::Builder builder;
  builder.add_operator("src", 1 * kMs);
  builder.add_operator("a", 1 * kMs, StateKind::kStateless, Selectivity{1.0, 2.0});
  builder.add_operator("b", 2 * kMs, StateKind::kStateless, Selectivity{1.0, 0.5});
  builder.add_operator("sink", 0.1 * kMs);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  Topology t = builder.build();

  const FusionSpec spec{{1, 2}, "F"};
  EXPECT_NEAR(fusion_service_time(t, spec), (1.0 + 2.0 * 2.0) * kMs, 1e-12);
  EXPECT_NEAR(fusion_output_gain(t, spec), 1.0, 1e-12);

  FusionResult result = apply_fusion(t, spec);
  EXPECT_NEAR(result.topology.op(result.fused_index).selectivity.output, 1.0, 1e-12);
}

TEST(FusionCandidates, RanksUnderutilizedChains) {
  Topology t = fig11_topology({1.0, 1.2, 0.7, 2.0, 1.5, 0.2});
  SteadyStateResult rates = steady_state(t);
  FusionSuggestOptions options;
  options.utilization_threshold = 0.5;  // ops 3,4,5 qualify (0.21/0.40/0.23)
  const auto candidates = suggest_fusion_candidates(t, rates, options);
  ASSERT_FALSE(candidates.empty());
  // Candidates are sorted by mean utilization ascending.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].mean_utilization, candidates[i].mean_utilization);
  }
  // The {op3, op4, op5} group (or a subset seeded at op3) must be found.
  bool found = false;
  for (const auto& candidate : candidates) {
    std::vector<OpIndex> members = candidate.spec.members;
    std::sort(members.begin(), members.end());
    if (members == std::vector<OpIndex>{2, 3, 4}) found = true;
    EXPECT_FALSE(candidate.introduces_bottleneck);
  }
  EXPECT_TRUE(found);
}

TEST(FusionCandidates, EmptyWhenEverythingIsBusy) {
  Topology::Builder builder;
  builder.add_operator("src", 1 * kMs);
  builder.add_operator("a", 0.9 * kMs);
  builder.add_operator("b", 0.95 * kMs);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  Topology t = builder.build();
  const auto candidates = suggest_fusion_candidates(t, steady_state(t), {});
  EXPECT_TRUE(candidates.empty());
}

}  // namespace
}  // namespace ss
