// Tests of the one-shot automatic optimization (fission + every safe
// fusion) and its execution as a combined deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "core/optimizer.hpp"
#include "runtime/engine.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

// src -> heavy (needs replicas) -> tail_a -> tail_b (idle pair worth fusing)
Topology mixed_pipeline() {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("heavy", 2.6 * kMs);
  b.add_operator("tail_a", 0.2 * kMs);
  b.add_operator("tail_b", 0.3 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(AutoOptimize, CombinesFissionAndFusion) {
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline());
  EXPECT_EQ(result.plan.replicas_of(1), 3);  // ceil(2.6)
  EXPECT_TRUE(result.reaches_ideal);
  ASSERT_EQ(result.fusions.size(), 1u);
  std::vector<OpIndex> members = result.fusions[0].members;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<OpIndex>{2, 3}));
  EXPECT_EQ(result.actors_saved_by_fusion, 1);
  EXPECT_NEAR(result.analysis.throughput(), 1000.0, 1e-6);
}

TEST(AutoOptimize, FusionCanBeDisabled) {
  AutoOptimizeOptions options;
  options.enable_fusion = false;
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline(), options);
  EXPECT_TRUE(result.fusions.empty());
  EXPECT_EQ(result.plan.replicas_of(1), 3);
}

TEST(AutoOptimize, NeverFusesReplicatedOperators) {
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline());
  for (const FusionSpec& fusion : result.fusions) {
    for (OpIndex m : fusion.members) {
      EXPECT_EQ(result.plan.replicas_of(m), 1) << "fused member was replicated";
    }
  }
}

TEST(AutoOptimize, FusionGroupsAreDisjoint) {
  // A longer idle tail: whatever groups are chosen must not overlap.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 0.1 * kMs);
  b.add_operator("b", 0.1 * kMs);
  b.add_operator("c", 0.1 * kMs);
  b.add_operator("d", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const AutoOptimizeResult result = auto_optimize(b.build());
  std::vector<bool> seen(5, false);
  for (const FusionSpec& fusion : result.fusions) {
    for (OpIndex m : fusion.members) {
      EXPECT_FALSE(seen[m]) << "operator in two groups";
      seen[m] = true;
    }
  }
  EXPECT_FALSE(result.fusions.empty());
}

TEST(AutoOptimize, RespectsReplicaBudget) {
  AutoOptimizeOptions options;
  options.bottleneck.max_total_replicas = 5;
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline(), options);
  EXPECT_LE(result.plan.total_replicas(4), 5);
}

// ---------------------------------------------------------------------------
// Latency-aware optimization: objectives, the SLO constraint, and the
// measured-tail route of reoptimize().

TEST(AutoOptimize, LatencyObjectiveOvershootsWithoutTradingThroughput) {
  AutoOptimizeOptions throughput;
  throughput.enable_fusion = false;
  AutoOptimizeOptions latency = throughput;
  latency.objective = Objective::kLatency;

  const AutoOptimizeResult base = auto_optimize(mixed_pipeline(), throughput);
  const AutoOptimizeResult tail = auto_optimize(mixed_pipeline(), latency);
  EXPECT_EQ(base.overshoot_replicas, 0);
  EXPECT_GT(tail.overshoot_replicas, 0);
  EXPECT_LT(tail.predicted_p99, base.predicted_p99);
  // Overshoot buys latency with actors, never with throughput.
  EXPECT_GE(tail.analysis.throughput(), base.analysis.throughput() * (1.0 - 1e-9));
}

TEST(AutoOptimize, BalancedObjectiveSitsBetweenThroughputAndLatency) {
  AutoOptimizeOptions options;
  options.enable_fusion = false;
  const AutoOptimizeResult base = auto_optimize(mixed_pipeline(), options);
  options.objective = Objective::kBalanced;
  const AutoOptimizeResult balanced = auto_optimize(mixed_pipeline(), options);
  options.objective = Objective::kLatency;
  const AutoOptimizeResult tail = auto_optimize(mixed_pipeline(), options);

  EXPECT_LE(balanced.predicted_p99, base.predicted_p99 * (1.0 + 1e-9));
  EXPECT_LE(tail.predicted_p99, balanced.predicted_p99 * (1.0 + 1e-9));
  EXPECT_LE(balanced.overshoot_replicas, tail.overshoot_replicas);
}

TEST(AutoOptimize, SloForcesOvershootAndReportsFeasibility) {
  AutoOptimizeOptions options;
  options.enable_fusion = false;
  const AutoOptimizeResult base = auto_optimize(mixed_pipeline(), options);

  // An SLO below the pure-fission tail but well above the bare service
  // path: reachable by widening the near-saturated bottleneck.
  options.slo_p99 = base.predicted_p99 * 0.5;
  const AutoOptimizeResult constrained = auto_optimize(mixed_pipeline(), options);
  EXPECT_TRUE(constrained.slo_feasible);
  EXPECT_GT(constrained.overshoot_replicas, 0);
  EXPECT_LE(constrained.predicted_p99, options.slo_p99);

  // A sub-service-time SLO is impossible; best effort is reported as such.
  options.slo_p99 = 1e-5;
  const AutoOptimizeResult impossible = auto_optimize(mixed_pipeline(), options);
  EXPECT_FALSE(impossible.slo_feasible);
}

TEST(AutoOptimize, FusionVetoedWhenItWouldBreachTheSlo) {
  // The idle pair fuses into a rho ~ 0.9 meta-operator: throughput-safe,
  // but its queueing tail is steep.  Without an SLO the fusion is applied;
  // with one that the unfused plan meets, the latency gate rejects it.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("heavy", 2.6 * kMs);
  b.add_operator("tail_a", 0.45 * kMs);
  b.add_operator("tail_b", 0.45 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Topology t = b.build();

  const AutoOptimizeResult unconstrained = auto_optimize(t);
  ASSERT_FALSE(unconstrained.fusions.empty());
  EXPECT_EQ(unconstrained.fusions_rejected_by_latency, 0);

  AutoOptimizeOptions options;
  options.slo_p99 = 0.025;
  const AutoOptimizeResult gated = auto_optimize(t, options);
  EXPECT_TRUE(gated.slo_feasible);
  EXPECT_GE(gated.fusions_rejected_by_latency, 1);
  EXPECT_TRUE(gated.fusions.empty());
}

TEST(Reoptimize, MeasuredTailBreachJustifiesRedeployWithoutThroughputGain) {
  // rho = 0.9 at the worker: Alg. 1 sees nothing to gain (the source is
  // the limit), so only the measured p99 can justify a move.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("worker", 0.9 * kMs);
  b.add_operator("sink", 0.05 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Topology t = b.build();

  std::vector<MeasuredOperator> measured(t.num_operators());
  for (auto& m : measured) {
    m.samples = 1000;
    m.processed_rate = 1000.0;
    m.emitted_rate = 1000.0;
  }

  ReoptimizeOptions options;
  options.optimize.enable_fusion = false;
  options.optimize.slo_p99 = 0.005;
  options.measured_p99 = 0.050;  // the runtime's windowed p99: breached
  const ReoptimizeResult r = reoptimize(t, runtime::Deployment{}, measured, options);
  EXPECT_TRUE(r.slo_breached);
  EXPECT_LT(r.gain, 0.05);  // no throughput story at all
  ASSERT_TRUE(r.diff.any());
  EXPECT_LE(r.predicted_p99_next, options.optimize.slo_p99);
  EXPECT_TRUE(r.slo_feasible);
  EXPECT_TRUE(r.beneficial) << "repairs_tail must make the move beneficial";

  // Control: same measurements without an SLO stay put.
  ReoptimizeOptions no_slo;
  no_slo.optimize.enable_fusion = false;
  const ReoptimizeResult idle = reoptimize(t, runtime::Deployment{}, measured, no_slo);
  EXPECT_FALSE(idle.slo_breached);
  EXPECT_FALSE(idle.beneficial);
}

TEST(Reoptimize, PredictedTailStandsInWhenNoMeasurementArrives) {
  // Without a measured p99 the SLO check falls back to the model's view of
  // the *running* deployment -- the controller can act before the first
  // full latency window.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("worker", 0.9 * kMs);
  b.add_operator("sink", 0.05 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Topology t = b.build();

  std::vector<MeasuredOperator> measured(t.num_operators());
  for (auto& m : measured) {
    m.samples = 1000;
    m.processed_rate = 1000.0;
    m.emitted_rate = 1000.0;
  }

  ReoptimizeOptions options;
  options.optimize.enable_fusion = false;
  options.optimize.slo_p99 = 0.005;
  const ReoptimizeResult r = reoptimize(t, runtime::Deployment{}, measured, options);
  EXPECT_GT(r.predicted_p99_current, options.optimize.slo_p99);
  EXPECT_TRUE(r.slo_breached);
  EXPECT_TRUE(r.beneficial);
}

TEST(AutoOptimize, DeploymentExecutesOnTheEngine) {
  Topology t = mixed_pipeline();
  const AutoOptimizeResult result = auto_optimize(t);

  runtime::Deployment deployment;
  deployment.replication = result.plan;
  deployment.partitions = result.partitions;
  deployment.fusions = result.fusions;
  runtime::Engine engine(t, deployment, runtime::synthetic_factory(), {});
  const runtime::RunStats stats =
      engine.run_for(std::chrono::duration<double>(2.0));
  EXPECT_NEAR(stats.source_rate, 1000.0, 0.12 * 1000.0);
  EXPECT_EQ(stats.dropped, 0u);
}

}  // namespace
}  // namespace ss
