// Tests of the one-shot automatic optimization (fission + every safe
// fusion) and its execution as a combined deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "core/optimizer.hpp"
#include "runtime/engine.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

// src -> heavy (needs replicas) -> tail_a -> tail_b (idle pair worth fusing)
Topology mixed_pipeline() {
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("heavy", 2.6 * kMs);
  b.add_operator("tail_a", 0.2 * kMs);
  b.add_operator("tail_b", 0.3 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(AutoOptimize, CombinesFissionAndFusion) {
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline());
  EXPECT_EQ(result.plan.replicas_of(1), 3);  // ceil(2.6)
  EXPECT_TRUE(result.reaches_ideal);
  ASSERT_EQ(result.fusions.size(), 1u);
  std::vector<OpIndex> members = result.fusions[0].members;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<OpIndex>{2, 3}));
  EXPECT_EQ(result.actors_saved_by_fusion, 1);
  EXPECT_NEAR(result.analysis.throughput(), 1000.0, 1e-6);
}

TEST(AutoOptimize, FusionCanBeDisabled) {
  AutoOptimizeOptions options;
  options.enable_fusion = false;
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline(), options);
  EXPECT_TRUE(result.fusions.empty());
  EXPECT_EQ(result.plan.replicas_of(1), 3);
}

TEST(AutoOptimize, NeverFusesReplicatedOperators) {
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline());
  for (const FusionSpec& fusion : result.fusions) {
    for (OpIndex m : fusion.members) {
      EXPECT_EQ(result.plan.replicas_of(m), 1) << "fused member was replicated";
    }
  }
}

TEST(AutoOptimize, FusionGroupsAreDisjoint) {
  // A longer idle tail: whatever groups are chosen must not overlap.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 0.1 * kMs);
  b.add_operator("b", 0.1 * kMs);
  b.add_operator("c", 0.1 * kMs);
  b.add_operator("d", 0.1 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  const AutoOptimizeResult result = auto_optimize(b.build());
  std::vector<bool> seen(5, false);
  for (const FusionSpec& fusion : result.fusions) {
    for (OpIndex m : fusion.members) {
      EXPECT_FALSE(seen[m]) << "operator in two groups";
      seen[m] = true;
    }
  }
  EXPECT_FALSE(result.fusions.empty());
}

TEST(AutoOptimize, RespectsReplicaBudget) {
  AutoOptimizeOptions options;
  options.bottleneck.max_total_replicas = 5;
  const AutoOptimizeResult result = auto_optimize(mixed_pipeline(), options);
  EXPECT_LE(result.plan.total_replicas(4), 5);
}

TEST(AutoOptimize, DeploymentExecutesOnTheEngine) {
  Topology t = mixed_pipeline();
  const AutoOptimizeResult result = auto_optimize(t);

  runtime::Deployment deployment;
  deployment.replication = result.plan;
  deployment.partitions = result.partitions;
  deployment.fusions = result.fusions;
  runtime::Engine engine(t, deployment, runtime::synthetic_factory(), {});
  const runtime::RunStats stats =
      engine.run_for(std::chrono::duration<double>(2.0));
  EXPECT_NEAR(stats.source_rate, 1000.0, 0.12 * 1000.0);
  EXPECT_EQ(stats.dropped, 0u);
}

}  // namespace
}  // namespace ss
