// Unit tests for the per-worker deques behind the pooled scheduler: LIFO
// local pop vs FIFO steal order, hint routing to the preferred queue, no
// lost or duplicated items under concurrent enqueue + steal, and the park
// protocol (a worker blocked after a steal miss wakes on any push; shutdown
// unblocks everyone).
#include "runtime/work_stealing.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace ss::runtime {
namespace {

using namespace std::chrono_literals;

TEST(WorkStealing, LocalPopIsLifo) {
  WorkStealingQueues queues(2);
  queues.push(1, 0);
  queues.push(2, 0);
  queues.push(3, 0);
  std::size_t out = 0;
  ASSERT_TRUE(queues.try_acquire(0, out));
  EXPECT_EQ(out, 3u);  // newest first: the hot-cache end
  ASSERT_TRUE(queues.try_acquire(0, out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(queues.try_acquire(0, out));
  EXPECT_EQ(out, 1u);
  EXPECT_FALSE(queues.try_acquire(0, out));
}

TEST(WorkStealing, StealIsFifo) {
  WorkStealingQueues queues(2);
  queues.push(1, 0);
  queues.push(2, 0);
  queues.push(3, 0);
  std::size_t out = 0;
  ASSERT_TRUE(queues.try_acquire(1, out));  // worker 1 owns nothing: steals
  EXPECT_EQ(out, 1u);  // oldest first: the cold end, opposite the owner
  ASSERT_TRUE(queues.try_acquire(1, out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(queues.try_acquire(1, out));
  EXPECT_EQ(out, 3u);
}

TEST(WorkStealing, LocalQueueDrainsBeforeStealing) {
  WorkStealingQueues queues(2);
  queues.push(10, 0);
  queues.push(20, 1);
  std::size_t out = 0;
  ASSERT_TRUE(queues.try_acquire(0, out));
  EXPECT_EQ(out, 10u);  // own queue first, even though 20 arrived later
  ASSERT_TRUE(queues.try_acquire(0, out));
  EXPECT_EQ(out, 20u);  // then the steal
  EXPECT_EQ(queues.pending(), 0u);
}

TEST(WorkStealing, PreferredIndexWrapsAroundQueueCount) {
  WorkStealingQueues queues(3);
  queues.push(7, 5);  // 5 % 3 == 2
  std::size_t out = 0;
  ASSERT_TRUE(queues.try_acquire(2, out));
  EXPECT_EQ(out, 7u);
}

TEST(WorkStealing, PendingTracksPushesAndAcquires) {
  WorkStealingQueues queues(2);
  EXPECT_EQ(queues.pending(), 0u);
  queues.push(1, 0);
  queues.push(2, 1);
  EXPECT_EQ(queues.pending(), 2u);
  std::size_t out = 0;
  ASSERT_TRUE(queues.try_acquire(0, out));
  EXPECT_EQ(queues.pending(), 1u);
}

TEST(WorkStealing, NoItemLostOrDuplicatedUnderConcurrentEnqueueAndSteal) {
  // Producers push distinct ids spread across all queues while consumer
  // threads race local pops against steals: every id must surface exactly
  // once.  This is the invariant the scheduler's actor claim relies on.
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 5000;
  constexpr std::size_t kTotal = kProducers * kPerProducer;
  WorkStealingQueues queues(kConsumers);

  std::atomic<std::size_t> taken{0};
  std::vector<std::atomic<int>> seen(kTotal);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::size_t item = 0;
      while (taken.load(std::memory_order_acquire) < kTotal) {
        if (queues.try_acquire(c, item)) {
          seen[item].fetch_add(1, std::memory_order_relaxed);
          taken.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t id = p * kPerProducer + i;
        queues.push(id, id);  // spread hints across every queue
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
  EXPECT_EQ(queues.pending(), 0u);
}

TEST(WorkStealing, ParkedWorkerWakesToStealFromAnotherQueue) {
  // A worker that found every queue empty parks in acquire(); a push hinted
  // at a *different* worker's queue must still wake it (steal on wake) —
  // the lost-wakeup scenario the idle/pending protocol exists to prevent.
  WorkStealingQueues queues(2);
  std::atomic<bool> got{false};
  std::size_t item = 0;
  std::thread worker([&] {
    if (queues.acquire(0, item)) got.store(true);
  });
  // Wait until the worker has actually parked before pushing.
  for (int i = 0; i < 1000 && queues.idle() == 0; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(queues.idle(), 1u);
  queues.push(99, 1);  // other worker's queue
  worker.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(item, 99u);
}

TEST(WorkStealing, ShutdownUnblocksEveryParkedWorker) {
  WorkStealingQueues queues(3);
  std::atomic<int> returned{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      std::size_t item = 0;
      EXPECT_FALSE(queues.acquire(w, item));  // false only on shutdown
      returned.fetch_add(1);
    });
  }
  for (int i = 0; i < 1000 && queues.idle() < 3; ++i) std::this_thread::sleep_for(1ms);
  queues.shutdown();
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(returned.load(), 3);
}

TEST(WorkStealing, AcquireReturnsFalseImmediatelyAfterShutdown) {
  WorkStealingQueues queues(1);
  queues.push(5, 0);
  queues.shutdown();
  std::size_t item = 0;
  EXPECT_FALSE(queues.acquire(0, item));  // remaining items are stale
}

}  // namespace
}  // namespace ss::runtime
