// Tests of the synthetic operator/source logic, the PacedWaiter drift
// compensation, and the deterministic PRNG underlying everything.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>

#include "gen/rng.hpp"
#include "runtime/clock.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

class Capture final : public Collector {
 public:
  void emit(const Tuple& t) override { items.push_back(t); }
  void emit_to(OpIndex, const Tuple& t) override { items.push_back(t); }
  std::vector<Tuple> items;
};

OperatorSpec spec_with(double service, Selectivity sel) {
  OperatorSpec spec;
  spec.name = "synthetic";
  spec.service_time = service;
  spec.selectivity = sel;
  return spec;
}

TEST(SyntheticOperator, UnitSelectivityForwardsEverything) {
  SyntheticOperator op(spec_with(1e-9, {}), 1);
  Capture out;
  for (int i = 0; i < 100; ++i) op.process(Tuple{}, 0, out);
  EXPECT_EQ(out.items.size(), 100u);
}

TEST(SyntheticOperator, InputSelectivityEmitsEveryNth) {
  SyntheticOperator op(spec_with(1e-9, Selectivity{5.0, 1.0}), 1);
  Capture out;
  for (int i = 0; i < 50; ++i) op.process(Tuple{}, 0, out);
  EXPECT_EQ(out.items.size(), 10u);
}

TEST(SyntheticOperator, FractionalOutputSelectivityConverges) {
  SyntheticOperator op(spec_with(1e-9, Selectivity{1.0, 1.6}), 7);
  Capture out;
  constexpr int kItems = 20000;
  for (int i = 0; i < kItems; ++i) op.process(Tuple{}, 0, out);
  EXPECT_NEAR(out.items.size() / static_cast<double>(kItems), 1.6, 0.03);
}

TEST(SyntheticOperator, OnFinishFlushesPartialWindow) {
  SyntheticOperator op(spec_with(1e-9, Selectivity{10.0, 1.0}), 1);
  Capture out;
  for (int i = 0; i < 7; ++i) op.process(Tuple{}, 0, out);
  EXPECT_TRUE(out.items.empty());
  op.on_finish(out);
  EXPECT_EQ(out.items.size(), 1u);
  op.on_finish(out);  // idempotent: nothing left to flush
  EXPECT_EQ(out.items.size(), 1u);
}

TEST(SyntheticOperator, ClonesUseDistinctRandomStreams) {
  SyntheticOperator op(spec_with(1e-9, Selectivity{1.0, 0.5}), 99);
  auto clone_a = op.clone();
  auto clone_b = op.clone();
  Capture a;
  Capture b;
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.id = i;
    clone_a->process(t, 0, a);
    clone_b->process(t, 0, b);
  }
  // Statistically the same rate but different realizations.
  EXPECT_NEAR(static_cast<double>(a.items.size()), 1000.0, 80.0);
  EXPECT_NEAR(static_cast<double>(b.items.size()), 1000.0, 80.0);
  std::vector<std::int64_t> ids_a;
  for (const Tuple& t : a.items) ids_a.push_back(t.id);
  std::vector<std::int64_t> ids_b;
  for (const Tuple& t : b.items) ids_b.push_back(t.id);
  EXPECT_NE(ids_a, ids_b);
}

TEST(SyntheticOperator, PacesAtServiceTime) {
  SyntheticOperator op(spec_with(2e-3, {}), 1);
  Capture out;
  const auto start = Clock::now();
  for (int i = 0; i < 20; ++i) op.process(Tuple{}, 0, out);
  const double elapsed = seconds_between(start, Clock::now());
  EXPECT_NEAR(elapsed, 0.040, 0.008);
}

TEST(SyntheticSource, FiniteSourceEndsAndNumbersItems) {
  OperatorSpec spec = spec_with(1e-9, {});
  SyntheticSource source(spec, 3, 1.0, /*max_items=*/5);
  Tuple t;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(source.next(t));
    EXPECT_EQ(t.id, i);
  }
  EXPECT_FALSE(source.next(t));
}

TEST(SyntheticSource, TimeScaleZeroDisablesPacing) {
  OperatorSpec spec = spec_with(10.0, {});  // 10 s nominal!
  SyntheticSource source(spec, 3, /*time_scale=*/0.0, 100);
  Tuple t;
  const auto start = Clock::now();
  while (source.next(t)) {
  }
  EXPECT_LT(seconds_between(start, Clock::now()), 0.5);
}

// ------------------------------------------------------------- PacedWaiter

TEST(PacedWaiter, ConvergesToRequestedMeanInterval) {
  PacedWaiter waiter;
  constexpr double kInterval = 0.5e-3;
  constexpr int kRounds = 100;
  const auto start = Clock::now();
  for (int i = 0; i < kRounds; ++i) waiter.wait(kInterval);
  const double elapsed = seconds_between(start, Clock::now());
  // Debt compensation keeps the total within ~5% of the nominal sum even
  // though each individual sleep overshoots.
  EXPECT_NEAR(elapsed, kRounds * kInterval, 0.05 * kRounds * kInterval);
}

TEST(PacedWaiter, RepaysDebtBySkippingWaits) {
  PacedWaiter waiter;
  waiter.wait(1e-4);
  // Manufacture debt: pretend a huge overshoot happened by waiting a tiny
  // interval repeatedly; debt must never go negative enough to stall.
  for (int i = 0; i < 100; ++i) waiter.wait(1e-6);
  EXPECT_GE(waiter.debt(), -1e-9);
}

TEST(PacedWaiter, ZeroAndNegativeAreNoOps) {
  PacedWaiter waiter;
  const auto start = Clock::now();
  waiter.wait(0.0);
  waiter.wait(-1.0);
  EXPECT_LT(seconds_between(start, Clock::now()), 0.01);
}

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(43);
  EXPECT_NE(Rng(42).next_u64(), c.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_LT(min, 0.001);
  EXPECT_GT(max, 0.999);
}

TEST(Rng, RandIntCoversRangeUniformly) {
  Rng rng(11);
  int counts[6] = {0};
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const int v = rng.rand_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    counts[v - 10]++;
  }
  for (int c : counts) EXPECT_NEAR(c, kDraws / 6.0, kDraws * 0.01);
  EXPECT_EQ(rng.rand_int(5, 5), 5);
  EXPECT_EQ(rng.rand_int(9, 3), 9);  // degenerate range clamps to lo
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.2, 0.01);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(1);
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace ss::runtime
