// Multi-tenant runtime end-to-end (runtime/tenants.hpp): N topologies as
// tenants of one shared SchedulerHost.  Covers the ISSUE's acceptance
// criteria: shared-pool throughput within 10% of dedicated pools, an
// SLO-breached tenant clawing replicas back from an over-provisioned
// neighbor through the joint controller, hot submit/retire losing zero
// tuples through the fence, and keyed-state continuity across a tenant's
// re-deployment while its neighbor keeps running.
#include "runtime/tenants.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "ops/keyed.hpp"
#include "runtime/engine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

/// Low-utilization linear pipeline: the paced source bounds throughput at
/// ~2000/s, every stage keeps up easily — contention-robust for the
/// shared-vs-dedicated parity comparison.
Topology light_pipeline() {
  Topology::Builder b;
  b.add_operator("src", 0.5e-3);
  b.add_operator("mid", 0.2e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TenantSpec light_spec(std::string name, std::int64_t items,
                      double max_seconds = 60.0) {
  TenantSpec spec;
  spec.name = std::move(name);
  spec.topology = light_pipeline();
  spec.factory = synthetic_factory(1.0, items);
  spec.max_duration = duration<double>(max_seconds);
  return spec;
}

TEST(MultiTenant, SharedPoolThroughputWithinTenPercentOfDedicated) {
  constexpr std::int64_t kItems = 3000;
  const Topology t = light_pipeline();

  // Baseline: each app back-to-back on its own dedicated 4-worker pool.
  std::vector<double> dedicated;
  for (int i = 0; i < 2; ++i) {
    EngineConfig cfg;
    cfg.scheduler = SchedulerKind::kPooled;
    cfg.workers = 4;
    Engine engine(t, Deployment{}, synthetic_factory(1.0, kItems), cfg);
    const RunStats stats = engine.run_until_complete(duration<double>(60.0));
    ASSERT_EQ(stats.ops[0].processed, static_cast<std::uint64_t>(kItems));
    dedicated.push_back(stats.source_rate);
  }

  // Both tenants concurrently on one shared 4-worker host.
  TenantGroup group(4);
  group.submit(light_spec("a", kItems));
  group.submit(light_spec("b", kItems));
  const std::vector<RunStats> stats = group.wait_all();

  ASSERT_EQ(stats.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(stats[i].ops[0].processed, static_cast<std::uint64_t>(kItems));
    EXPECT_EQ(stats[i].dropped, 0u);
    EXPECT_NEAR(stats[i].source_rate, dedicated[i], 0.10 * dedicated[i])
        << "tenant " << i << " lost more than 10% to sharing";
  }
}

TEST(MultiTenant, BreachedTenantClawsBackReplicasFromNeighbor) {
  // "hungry" carries a 25 ms p99 SLO its sequential deployment cannot meet
  // (the 1.6 ms worker stage runs at rho = 1.6; its standing queue puts the
  // measured tail near 100 ms).  "greedy" needs 3 replicas but deploys 6.
  // Budget 7 < hungry's desire + greedy's floor + surplus: the joint
  // controller must grow hungry past its floor and shrink greedy below its
  // over-provisioned start — the claw-back.
  Topology::Builder hb;
  hb.add_operator("src", 1.0e-3);
  hb.add_operator("worker", 1.6e-3);
  hb.add_operator("sink", 0.05e-3);
  hb.add_edge(0, 1);
  hb.add_edge(1, 2);

  TenantSpec hungry;
  hungry.name = "hungry";
  hungry.topology = hb.build();
  hungry.factory = synthetic_factory();  // unbounded
  hungry.optimize.enable_fusion = false;
  hungry.optimize.slo_p99 = 0.025;
  hungry.max_duration = duration<double>(6.0);

  TenantSpec greedy = light_spec("greedy", -1, 6.0);
  greedy.topology = [] {
    Topology::Builder b;
    b.add_operator("src", 1.0e-3);
    b.add_operator("light", 0.2e-3);
    b.add_operator("sink", 0.05e-3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    return b.build();
  }();
  greedy.factory = synthetic_factory();
  greedy.deployment.replication.replicas = {1, 4, 1};  // over-provisioned
  greedy.optimize.enable_fusion = false;

  TenantGroup group(4);
  const std::size_t h = group.submit(std::move(hungry));
  const std::size_t g = group.submit(std::move(greedy));
  JointControllerOptions controller;
  controller.period = 0.25;
  controller.threshold = 5.0;  // rate path disabled: breach/claw-back only
  controller.replica_budget = 7;
  group.start_controller(controller);
  const std::vector<RunStats> stats = group.wait_all();

  // The breached tenant re-deployed past its sequential floor...
  EXPECT_GE(stats[h].reconfigurations, 1);
  const int hungry_final =
      group.engine(h).deployment().replication.total_replicas(3);
  EXPECT_GE(hungry_final, 4) << "breached tenant never grew";
  // ...and the over-provisioned neighbor gave replicas back.
  EXPECT_GE(stats[g].reconfigurations, 1);
  const int greedy_final =
      group.engine(g).deployment().replication.total_replicas(3);
  EXPECT_LT(greedy_final, 6) << "neighbor kept its over-provisioned share";
  // A decision window recorded the breach that justified the move.
  ASSERT_NE(group.controller(), nullptr);
  bool breach_seen = false;
  for (const JointDecision& d : group.controller()->decisions()) {
    for (std::size_t k = 0; k < d.names.size(); ++k) {
      if (d.names[k] == "hungry" && d.slo_breached[k] && d.redeployed[k]) {
        breach_seen = true;
        EXPECT_GT(d.granted[k], d.current[k]);
      }
    }
  }
  EXPECT_TRUE(breach_seen) << "no window re-deployed the breached tenant";
  // The fences cost neither tenant a tuple.
  EXPECT_EQ(stats[h].dropped, 0u);
  EXPECT_EQ(stats[g].dropped, 0u);
}

TEST(MultiTenant, HotSubmitAndRetireLoseNothingThroughTheFence) {
  constexpr std::int64_t kItemsB = 2000;
  TenantGroup group(4);
  // A runs an unbounded source; B arrives while A is mid-stream.
  const std::size_t a = group.submit(light_spec("a", -1, 30.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_FALSE(group.finished(a));
  const std::size_t bi = group.submit(light_spec("b", kItemsB));

  // B drains naturally (finite source) while A keeps running.
  while (!group.finished(bi)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(group.finished(a));
  const RunStats stats_b = group.retire(bi);
  // Exact count: every item B's source generated reached its sink.
  EXPECT_EQ(stats_b.dropped, 0u);
  EXPECT_EQ(stats_b.ops[0].processed, static_cast<std::uint64_t>(kItemsB));
  EXPECT_EQ(stats_b.ops[1].processed, stats_b.ops[0].emitted);
  EXPECT_EQ(stats_b.ops[2].processed, stats_b.ops[1].emitted);

  // Hot-retire A mid-stream: the shutdown fence drains the pipeline, so
  // everything the source emitted before stopping is accounted for.
  const RunStats stats_a = group.retire(a);
  EXPECT_EQ(stats_a.dropped, 0u);
  EXPECT_GT(stats_a.ops[0].processed, 0u);
  EXPECT_EQ(stats_a.ops[1].processed, stats_a.ops[0].emitted);
  EXPECT_EQ(stats_a.ops[2].processed, stats_a.ops[1].emitted);

  // The per-tenant ready-hint ledger balances (the release-mode invariant
  // format_stats surfaces): pushes == pops + steals + discarded.
  for (const std::size_t idx : {a, bi}) {
    const SchedulerCounters c = group.engine(idx).scheduler_counters();
    EXPECT_GT(c.pushes, 0u);
    EXPECT_EQ(c.pushes, c.local_pops + c.steals + c.discarded) << "tenant " << idx;
  }
}

// ---------------------------------------------------------------------------
// Keyed-state continuity with a live neighbor

/// Paced source cycling keys 0..keys-1 round-robin, f[0] = 1.
class RoundRobinKeySource final : public SourceLogic {
 public:
  RoundRobinKeySource(std::int64_t count, int keys, double interval)
      : count_(count), keys_(keys), interval_(interval) {}

  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    {
      BlockingSection blocking;
      waiter_.wait(interval_);
    }
    out = Tuple{};
    out.id = next_id_;
    out.key = next_id_ % keys_;
    out.f[0] = 1.0;
    ++next_id_;
    return true;
  }

 private:
  std::int64_t count_;
  int keys_;
  double interval_;
  PacedWaiter waiter_;
  std::int64_t next_id_ = 0;
};

/// Terminal operator recording every tuple it sees.
class CaptureSink final : public OperatorLogic {
 public:
  CaptureSink(std::mutex& mu, std::vector<Tuple>& out) : mu_(mu), out_(out) {}

  void process(const Tuple& item, OpIndex, Collector&) override {
    std::lock_guard lock(mu_);
    out_.push_back(item);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<CaptureSink>(mu_, out_);
  }

 private:
  std::mutex& mu_;
  std::vector<Tuple>& out_;
};

TEST(MultiTenant, KeyedStateSurvivesRedeployWhileNeighborKeepsRunning) {
  constexpr int kKeys = 16;
  constexpr std::int64_t kItems = 3000;
  Topology::Builder b;
  b.add_operator("src", 0.1e-3);
  OperatorSpec count;
  count.name = "count";
  count.service_time = 0.02e-3;
  count.state = StateKind::kPartitionedStateful;
  count.keys = KeyDistribution::uniform(kKeys);
  b.add_operator(std::move(count));
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);

  std::mutex mu;
  std::vector<Tuple> captured;
  TenantSpec keyed;
  keyed.name = "keyed";
  keyed.topology = b.build();
  keyed.factory.source = [&](OpIndex, const OperatorSpec&) {
    return std::make_unique<RoundRobinKeySource>(kItems, kKeys, 0.1e-3);
  };
  keyed.factory.logic = [&](OpIndex op,
                            const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ops::KeyedCounter>();
    return std::make_unique<CaptureSink>(mu, captured);
  };
  keyed.config.assign_keys_at_emitter = false;  // real keys drive the partition map
  keyed.max_duration = duration<double>(60.0);

  TenantGroup group(4);
  const std::size_t k = group.submit(std::move(keyed));
  const std::size_t n = group.submit(light_spec("neighbor", -1, 30.0));

  // Widen the counter to two replicas mid-stream (the keyed run lasts
  // ~0.3s of source time); the neighbor keeps running through the fence.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Deployment widened;
  widened.replication.replicas = {1, 2, 1};
  bool switched = false;
  while (!switched && !group.finished(k)) {
    switched = group.engine(k).reconfigure(widened);
    if (!switched) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The keyed source is finite: let it drain naturally so every item is
  // captured, then collect (retire on a finished tenant only joins).
  while (!group.finished(k)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const RunStats keyed_stats = group.retire(k);
  ASSERT_FALSE(group.finished(n)) << "the neighbor must outlive the switch-over";
  const RunStats neighbor_stats = group.retire(n);

  EXPECT_TRUE(switched);
  EXPECT_EQ(keyed_stats.reconfigurations, 1);
  EXPECT_GE(keyed_stats.keys_migrated, 1u);
  EXPECT_EQ(keyed_stats.dropped, 0u);
  EXPECT_EQ(neighbor_stats.dropped, 0u);

  // Continuity: the running count of every key must reach the key's total
  // tuple count — a reset at the switch-over would cap the maximum below it.
  std::map<std::int64_t, double> max_count;
  std::map<std::int64_t, std::uint64_t> total;
  ASSERT_EQ(captured.size(), static_cast<std::size_t>(kItems));
  for (const Tuple& tp : captured) {
    max_count[tp.key] = std::max(max_count[tp.key], tp.f[1]);
    ++total[tp.key];
  }
  ASSERT_EQ(total.size(), static_cast<std::size_t>(kKeys));
  for (const auto& [key, count_of_key] : total) {
    EXPECT_EQ(max_count[key], static_cast<double>(count_of_key))
        << "key " << key << ": running count reset across the switch-over";
  }
}

}  // namespace
}  // namespace ss::runtime
