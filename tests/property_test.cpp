// Property tests of the cost models over random testbed topologies:
// monotonicity laws, invariant preservation under the optimizer's
// transformations, and cross-checks between independent code paths.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/bottleneck.hpp"
#include "core/fusion.hpp"
#include "core/latency.hpp"
#include "core/paths.hpp"
#include "core/steady_state.hpp"
#include "gen/workload.hpp"

namespace ss {
namespace {

class ModelProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Topology random(std::uint64_t salt = 0) {
    Rng rng(GetParam() ^ salt);
    return random_topology(rng);
  }
};

TEST_P(ModelProperties, SlowingAnOperatorNeverRaisesThroughput) {
  Topology t = random();
  const double base = steady_state(t).throughput();
  for (OpIndex i = 1; i < t.num_operators(); ++i) {
    Topology::Builder b;
    for (OpIndex j = 0; j < t.num_operators(); ++j) {
      OperatorSpec spec = t.op(j);
      if (j == i) spec.service_time *= 3.0;
      b.add_operator(std::move(spec));
    }
    for (const Edge& e : t.edges()) b.add_edge(e.from, e.to, e.probability);
    const double slowed = steady_state(b.build()).throughput();
    EXPECT_LE(slowed, base * (1.0 + 1e-9)) << "slowing op " << i << " raised throughput";
  }
}

TEST_P(ModelProperties, AddingReplicasNeverLowersThroughput) {
  Topology t = random(1);
  double previous = steady_state(t).throughput();
  for (int n = 2; n <= 8; n *= 2) {
    ReplicationPlan plan;
    plan.replicas.assign(t.num_operators(), n);
    plan.replicas[t.source()] = 1;
    // Partitioned operators: cap capacity by the achievable key split.
    plan.max_share.assign(t.num_operators(), 0.0);
    for (OpIndex i = 0; i < t.num_operators(); ++i) {
      if (t.op(i).state == StateKind::kPartitionedStateful) {
        KeyPartition part = partition_keys(t.op(i).keys, n);
        plan.replicas[i] = part.replicas;
        plan.max_share[i] = part.max_share;
      }
      if (t.op(i).state == StateKind::kStateful) plan.replicas[i] = 1;
    }
    const double now = steady_state(t, plan).throughput();
    EXPECT_GE(now, previous * (1.0 - 1e-9)) << "n = " << n;
    previous = now;
  }
}

TEST_P(ModelProperties, BudgetMonotonicity) {
  Topology t = random(2);
  const int optimal = eliminate_bottlenecks(t).total_replicas;
  double previous = 0.0;
  for (int budget :
       {static_cast<int>(t.num_operators()), optimal / 2 + 1, optimal, optimal + 10}) {
    if (budget < static_cast<int>(t.num_operators())) continue;
    BottleneckOptions options;
    options.max_total_replicas = budget;
    const double now = eliminate_bottlenecks(t, options).analysis.throughput();
    EXPECT_GE(now, previous * (1.0 - 1e-6)) << "budget " << budget;
    previous = now;
  }
}

TEST_P(ModelProperties, EliminationNeverHurts) {
  Topology t = random(3);
  const double before = steady_state(t).throughput();
  const BottleneckResult result = eliminate_bottlenecks(t);
  EXPECT_GE(result.analysis.throughput(), before * (1.0 - 1e-9));
  // And never exceeds the source's own pace.
  EXPECT_LE(result.analysis.throughput(), ideal_source_rate(t) * (1.0 + 1e-9));
}

TEST_P(ModelProperties, SafeFusionPreservesThroughput) {
  Topology t = random(4);
  const SteadyStateResult rates = steady_state(t);
  for (const FusionCandidate& candidate : suggest_fusion_candidates(t, rates, {})) {
    const FusionResult result = apply_fusion(t, candidate.spec);
    EXPECT_FALSE(result.introduces_bottleneck);
    EXPECT_NEAR(result.throughput_after, result.throughput_before,
                1e-6 * result.throughput_before)
        << "candidate seeded at " << t.op(candidate.spec.members.front()).name;
  }
}

TEST_P(ModelProperties, FusionPreservesExternalFlowSplit) {
  // For every suggested fusion: the flow reaching each surviving operator
  // must be identical before and after the rewrite (unit-selectivity
  // members guaranteed by comparing arrival coefficients via the model).
  Topology t = random(5);
  const SteadyStateResult rates = steady_state(t);
  for (const FusionCandidate& candidate : suggest_fusion_candidates(t, rates, {})) {
    const FusionResult result = apply_fusion(t, candidate.spec);
    const SteadyStateResult after = steady_state(result.topology);
    for (OpIndex old_index = 0; old_index < t.num_operators(); ++old_index) {
      const OpIndex new_index = result.remap[old_index];
      if (new_index == result.fused_index) continue;  // member: identity changed
      EXPECT_NEAR(after.rates[new_index].arrival, rates.rates[old_index].arrival,
                  1e-6 * (1.0 + rates.rates[old_index].arrival))
          << t.op(old_index).name;
    }
  }
}

TEST_P(ModelProperties, SteadyStateIsIdempotentAndPure) {
  Topology t = random(6);
  const SteadyStateResult a = steady_state(t);
  const SteadyStateResult b = steady_state(t);
  ASSERT_EQ(a.rates.size(), b.rates.size());
  for (std::size_t i = 0; i < a.rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rates[i].departure, b.rates[i].departure);
    EXPECT_DOUBLE_EQ(a.rates[i].utilization, b.rates[i].utilization);
  }
}

TEST_P(ModelProperties, ThroughputBoundedByEveryCut) {
  // The corrected source rate can never exceed mu_i / coeff_i for any
  // operator i (each operator is a capacity cut of the flow graph).
  Topology t = random(7);
  const SteadyStateResult rates = steady_state(t);
  const auto coeff = arrival_coefficients_with_selectivity(t);
  for (OpIndex i = 1; i < t.num_operators(); ++i) {
    if (coeff[i] <= 0.0) continue;
    EXPECT_LE(rates.source_rate, t.op(i).service_rate() / coeff[i] * (1.0 + 1e-6))
        << t.op(i).name;
  }
}

// ---------------------------------------------------------------------------
// Latency-model laws (core/latency).

TEST_P(ModelProperties, AddingAReplicaNeverRaisesPredictedLatency) {
  // Fixed-lambda counterfactual: estimate_latency(t, rates, plan) answers
  // "same arrivals, different replication", so widening any stateless
  // operator by one replica must not raise its predicted response nor the
  // end-to-end figures (lower per-replica load, smoother arrivals).
  Topology t = random(8);
  const BottleneckResult base = eliminate_bottlenecks(t);
  const LatencyEstimate before = estimate_latency(t, base.analysis, base.plan);
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    if (i == t.source()) continue;
    if (t.op(i).state != StateKind::kStateless) continue;
    ReplicationPlan widened = base.plan;
    if (widened.replicas.empty()) widened.replicas.assign(t.num_operators(), 1);
    ++widened.replicas[i];
    const LatencyEstimate after = estimate_latency(t, base.analysis, widened);
    EXPECT_LE(after.response[i], before.response[i] * (1.0 + 1e-6))
        << "widening " << t.op(i).name << " raised its own response";
    EXPECT_LE(after.sojourn_mean, before.sojourn_mean * (1.0 + 1e-6))
        << "widening " << t.op(i).name << " raised the end-to-end mean";
    // p99 comes from bisection on the mixture CDF: allow its resolution.
    EXPECT_LE(after.sojourn.p99, before.sojourn.p99 * (1.0 + 1e-4))
        << "widening " << t.op(i).name << " raised the end-to-end p99";
  }
}

TEST_P(ModelProperties, RaisingTheLoadNeverLowersPredictedLatency) {
  // Push the same topology toward saturation by speeding the source up:
  // every predicted latency figure must be monotone non-decreasing in the
  // offered load (queues only grow).
  Topology t = random(9);
  double previous_mean = 0.0;
  double previous_p99 = 0.0;
  for (const double slowdown : {4.0, 2.0, 1.4, 1.0, 0.8}) {
    Topology::Builder b;
    for (OpIndex j = 0; j < t.num_operators(); ++j) {
      OperatorSpec spec = t.op(j);
      if (j == t.source()) spec.service_time *= slowdown;
      b.add_operator(std::move(spec));
    }
    for (const Edge& e : t.edges()) b.add_edge(e.from, e.to, e.probability);
    const Topology loaded = b.build();
    const SteadyStateResult rates = steady_state(loaded);
    const LatencyEstimate est = estimate_latency(loaded, rates);
    EXPECT_GE(est.sojourn_mean, previous_mean * (1.0 - 1e-6))
        << "source slowdown " << slowdown << " lowered the mean";
    EXPECT_GE(est.sojourn.p99, previous_p99 * (1.0 - 1e-6))
        << "source slowdown " << slowdown << " lowered the p99";
    previous_mean = est.sojourn_mean;
    previous_p99 = est.sojourn.p99;
  }
}

TEST_P(ModelProperties, FusedResponseBoundedByItsMembers) {
  // Consistency of the fusion rewrite with the latency model.  The fused
  // meta-operator serves the whole member path per entering item, so:
  //   * its predicted response is at least every member's response
  //     weighted by the member's conditional reach probability (a branch
  //     visited 10% of the time contributes 10% of its cost);
  //   * its *service time* never exceeds the member service times summed
  //     along the path (fusion adds no work); and
  //   * its response exceeds the *summed member responses* only through
  //     the concentrated queue -- member utilizations pile onto one
  //     station, and queueing delay is superadditive in utilization (the
  //     very effect the optimizer's fusion latency gate rejects on).
  Topology t = random(10);
  const SteadyStateResult rates = steady_state(t);
  const LatencyEstimate before = estimate_latency(t, rates);
  for (const FusionCandidate& candidate : suggest_fusion_candidates(t, rates, {})) {
    const FusionResult fused = apply_fusion(t, candidate.spec);
    const SteadyStateResult after_rates = steady_state(fused.topology);
    const LatencyEstimate after = estimate_latency(fused.topology, after_rates);
    double entry_arrival = 0.0;
    for (OpIndex m : candidate.spec.members) {
      entry_arrival = std::max(entry_arrival, rates.rates[m].arrival);
    }
    if (entry_arrival <= 0.0) continue;
    double weighted_max = 0.0;
    double sum_responses = 0.0;
    double sum_service = 0.0;
    double max_rho = 0.0;
    for (OpIndex m : candidate.spec.members) {
      const double reach = rates.rates[m].arrival / entry_arrival;
      weighted_max = std::max(weighted_max, before.response[m] * reach);
      sum_responses += before.response[m];
      sum_service += t.op(m).service_time;
      max_rho = std::max(max_rho, rates.rates[m].utilization);
    }
    const char* seed_name = t.op(candidate.spec.members.front()).name.c_str();
    const double fused_response = after.response[fused.fused_index];
    const double fused_service = fused.topology.op(fused.fused_index).service_time;
    EXPECT_GE(fused_response, weighted_max * (1.0 - 1e-6))
        << "fusion seeded at " << seed_name;
    EXPECT_LE(fused_service, sum_service * (1.0 + 1e-6))
        << "fusion seeded at " << seed_name << " invented work";
    if (fused_response > sum_responses * (1.0 + 1e-6)) {
      EXPECT_GT(after_rates.rates[fused.fused_index].utilization,
                max_rho * (1.0 - 1e-6))
          << "fusion seeded at " << seed_name
          << ": response above the member sum without a hotter queue";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperties,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace ss
