// Tests of the pooled scheduler: semantic equivalence with the
// thread-per-actor backend (exact accounting, fission/fusion, ordering,
// failure propagation), deadlock-free drains of Algorithm-5 random
// topologies on few workers, and throughput parity on the Fig. 11 / Table 1
// topology.  The Stress.* case doubles as the TSAN target.
#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "core/error.hpp"
#include "core/steady_state.hpp"
#include "gen/random_topology.hpp"
#include "gen/rng.hpp"
#include "runtime/engine.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

class BurstSource final : public SourceLogic {
 public:
  explicit BurstSource(std::int64_t count) : count_(count) {}
  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    out = Tuple{};
    out.id = next_id_++;
    out.key = out.id;
    return true;
  }

 private:
  std::int64_t count_;
  std::int64_t next_id_ = 0;
};

class PassThrough final : public OperatorLogic {
 public:
  explicit PassThrough(std::atomic<std::int64_t>* seen = nullptr) : seen_(seen) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (seen_ != nullptr) seen_->fetch_add(1);
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<PassThrough>(seen_);
  }

 private:
  std::atomic<std::int64_t>* seen_;
};

/// Records the ids a sink received, in arrival order.
class IdRecorder final : public OperatorLogic {
 public:
  explicit IdRecorder(std::vector<std::int64_t>* ids, std::mutex* mu) : ids_(ids), mu_(mu) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    {
      std::lock_guard lock(*mu_);
      ids_->push_back(item.id);
    }
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<IdRecorder>(ids_, mu_);
  }

 private:
  std::vector<std::int64_t>* ids_;
  std::mutex* mu_;
};

class Throws final : public OperatorLogic {
 public:
  void process(const Tuple&, OpIndex, Collector&) override {
    throw Error("operator exploded");
  }
  std::unique_ptr<OperatorLogic> clone() const override { return std::make_unique<Throws>(); }
};

Topology pipeline(std::initializer_list<const char*> names) {
  Topology::Builder b;
  OpIndex prev = kInvalidOp;
  for (const char* name : names) {
    OpIndex cur = b.add_operator(name, 1e-6);
    if (prev != kInvalidOp) b.add_edge(prev, cur);
    prev = cur;
  }
  return b.build();
}

/// An Algorithm-5 random DAG shape turned into a near-zero-service
/// topology, so drains exercise graph structure rather than pacing.
Topology fast_random_topology(std::uint64_t seed, int vertices, int edges) {
  Rng rng(seed);
  const TopologyShape shape = random_shape(rng, vertices, edges);
  Topology::Builder b;
  for (int v = 0; v < shape.num_vertices; ++v) {
    b.add_operator("op" + std::to_string(v), 1e-6);
  }
  for (const auto& [from, to] : shape.edges) {
    b.add_edge(static_cast<OpIndex>(from), static_cast<OpIndex>(to));
  }
  b.normalize_probabilities();
  return b.build();
}

AppFactory burst_factory(std::int64_t items, std::atomic<std::int64_t>* seen = nullptr) {
  AppFactory factory;
  factory.source = [items](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(items);
  };
  factory.logic = [seen](OpIndex, const OperatorSpec&) {
    return std::make_unique<PassThrough>(seen);
  };
  return factory;
}

EngineConfig pooled_config(int workers) {
  EngineConfig cfg;
  cfg.mailbox_capacity = 64;
  cfg.send_timeout = duration<double>(5.0);
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = workers;
  return cfg;
}

TEST(SchedulerKindParsing, RoundTrips) {
  EXPECT_EQ(scheduler_kind_from_string("threads"), SchedulerKind::kThreadPerActor);
  EXPECT_EQ(scheduler_kind_from_string("pool"), SchedulerKind::kPooled);
  EXPECT_STREQ(to_string(SchedulerKind::kThreadPerActor), "threads");
  EXPECT_STREQ(to_string(SchedulerKind::kPooled), "pool");
  EXPECT_THROW(scheduler_kind_from_string("fibers"), ss::Error);
}

TEST(PooledScheduler, FiniteStreamFlowsExactly) {
  Topology t = pipeline({"src", "a", "b", "sink"});
  static constexpr std::int64_t kItems = 2000;
  Engine engine(t, Deployment{}, burst_factory(kItems), pooled_config(2));
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.dropped, 0u);
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(stats.ops[i].processed, static_cast<std::uint64_t>(kItems)) << "op " << i;
    EXPECT_EQ(stats.ops[i].emitted, static_cast<std::uint64_t>(kItems)) << "op " << i;
  }
}

TEST(PooledScheduler, SingleWorkerDrainsBackpressuredPipeline) {
  // One worker and mailboxes much smaller than the stream: every send hits
  // the BAS slow path eventually.  The cooperative-blocking compensation
  // must keep the pipeline live (a naive one-worker pool deadlocks here).
  Topology t = pipeline({"src", "a", "b", "sink"});
  static constexpr std::int64_t kItems = 3000;
  EngineConfig cfg = pooled_config(1);
  cfg.mailbox_capacity = 4;
  Engine engine(t, Deployment{}, burst_factory(kItems), cfg);
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.ops[3].processed, static_cast<std::uint64_t>(kItems));
}

TEST(PooledScheduler, TwentyOperatorRandomTopologyDrainsOnTwoWorkers) {
  // Algorithm 5 at the paper's maximum testbed size (V = 20), squeezed
  // onto two workers: the run must complete (deadlock-free drain) with
  // exact item accounting at the source and no drops.
  static constexpr std::int64_t kItems = 4000;
  Topology t = fast_random_topology(/*seed=*/7, /*vertices=*/20, /*edges=*/26);
  Engine engine(t, Deployment{}, burst_factory(kItems), pooled_config(2));
  RunStats stats = engine.run_until_complete(duration<double>(60.0));
  EXPECT_LT(stats.total_seconds, 60.0) << "drain did not complete (watchdog hit)";
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.ops[0].processed, static_cast<std::uint64_t>(kItems));
  // Conservation: every operator emits what flows in (unit selectivity).
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(stats.ops[i].emitted, stats.ops[i].processed) << "op " << i;
  }
}

TEST(PooledScheduler, FissionProcessesEverythingOnce) {
  Topology t = pipeline({"src", "work", "sink"});
  static constexpr std::int64_t kItems = 5000;
  std::atomic<std::int64_t> seen{0};
  Deployment d;
  d.replication.replicas = {1, 4, 1};
  Engine engine(t, d, burst_factory(kItems, &seen), pooled_config(2));
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(seen.load(), 2 * kItems);  // once across work's replicas, once at the sink
  EXPECT_EQ(stats.ops[1].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[2].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(PooledScheduler, FusionComposesMembersInsideOneActor) {
  Topology t = pipeline({"src", "f1", "f2", "sink"});
  static constexpr std::int64_t kItems = 3000;
  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 2}, "fused"});
  Engine engine(t, d, burst_factory(kItems), pooled_config(2));
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.ops[1].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[2].processed, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[3].processed, static_cast<std::uint64_t>(kItems));
}

TEST(PooledScheduler, PreservesReplicaOrderWhenConfigured) {
  Topology t = pipeline({"src", "work", "sink"});
  static constexpr std::int64_t kItems = 4000;
  std::vector<std::int64_t> ids;
  std::mutex mu;
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(kItems);
  };
  factory.logic = [&](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 2) return std::make_unique<IdRecorder>(&ids, &mu);
    return std::make_unique<PassThrough>();
  };
  Deployment d;
  d.replication.replicas = {1, 3, 1};
  EngineConfig cfg = pooled_config(2);
  cfg.preserve_replica_order = true;
  Engine engine(t, d, factory, cfg);
  RunStats stats = engine.run_until_complete(duration<double>(30.0));
  EXPECT_EQ(stats.dropped, 0u);
  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kItems));
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(PooledScheduler, OperatorFailureAbortsTheRun) {
  Topology t = pipeline({"src", "boom", "sink"});
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(100);
  };
  factory.logic = [](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<Throws>();
    return std::make_unique<PassThrough>();
  };
  Engine engine(t, Deployment{}, factory, pooled_config(2));
  EXPECT_THROW((void)engine.run_until_complete(duration<double>(30.0)), ss::Error);
}

TEST(PooledScheduler, MatchesThreadPerActorThroughputOnTable1) {
  // The Fig. 11 / Table 1 six-operator topology with its profiled service
  // times: two pooled workers must reproduce the thread-per-actor rate
  // within 5% — the BlockingSection compensation is what makes this hold
  // even though the topology needs ~2.9 concurrent worker-ms per item.
  Topology::Builder b;
  const double service_ms[] = {1.0, 1.2, 0.7, 2.0, 1.5, 0.2};
  for (int i = 0; i < 6; ++i) b.add_operator("op" + std::to_string(i + 1), service_ms[i] * 1e-3);
  b.add_edge(0, 1, 0.7);
  b.add_edge(0, 2, 0.3);
  b.add_edge(1, 5, 1.0);
  b.add_edge(2, 3, 2.0 / 3.0);
  b.add_edge(2, 4, 1.0 / 3.0);
  b.add_edge(3, 4, 0.25);
  b.add_edge(3, 5, 0.75);
  b.add_edge(4, 5, 1.0);
  Topology t = b.build();

  EngineConfig threads_cfg;
  Engine threads_engine(t, Deployment{}, synthetic_factory(), threads_cfg);
  const RunStats threads_stats = threads_engine.run_for(duration<double>(3.0));

  Engine pool_engine(t, Deployment{}, synthetic_factory(), pooled_config(2));
  const RunStats pool_stats = pool_engine.run_for(duration<double>(3.0));

  ASSERT_GT(threads_stats.source_rate, 0.0);
  EXPECT_NEAR(pool_stats.source_rate, threads_stats.source_rate,
              0.05 * threads_stats.source_rate);
  EXPECT_EQ(pool_stats.dropped, 0u);
}

TEST(Stress, PooledRandomTopologiesAcrossSeedsStayRaceFree) {
  // TSAN target: several Algorithm-5 shapes with tiny mailboxes and a
  // 2-worker pool, exercising claim/release, on-ready notification, the
  // try_send fast path and the blocking fallback concurrently.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const int vertices = 8 + static_cast<int>(seed) * 3;  // 11..20
    Topology t = fast_random_topology(seed, vertices, vertices + 5);
    static constexpr std::int64_t kItems = 1500;
    EngineConfig cfg = pooled_config(2);
    cfg.mailbox_capacity = 8;
    Engine engine(t, Deployment{}, burst_factory(kItems), cfg);
    RunStats stats = engine.run_until_complete(duration<double>(60.0));
    EXPECT_EQ(stats.dropped, 0u) << "seed " << seed;
    EXPECT_EQ(stats.ops[0].processed, static_cast<std::uint64_t>(kItems)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ss::runtime
