// Tests of the measurement plumbing: StatsBoard counters/snapshots,
// make_run_stats windowing, and the human-readable stats formatting.
#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "runtime/telemetry.hpp"

namespace ss::runtime {
namespace {

Topology three_op_topology() {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("mid", 1e-3);
  b.add_operator("out", 1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(StatsBoard, CountsAndSnapshots) {
  StatsBoard board(3);
  board.add_processed(0);
  board.add_processed(0);
  board.add_emitted(0);
  board.add_processed(2);
  const CounterSnapshot snap = board.snapshot(1.5);
  EXPECT_EQ(snap.processed[0], 2u);
  EXPECT_EQ(snap.emitted[0], 1u);
  EXPECT_EQ(snap.processed[1], 0u);
  EXPECT_EQ(snap.processed[2], 1u);
  EXPECT_DOUBLE_EQ(snap.at_seconds, 1.5);
}

TEST(StatsBoard, ConcurrentIncrementsAreExact) {
  StatsBoard board(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&board] {
      for (int i = 0; i < kPerThread; ++i) board.add_processed(0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(board.snapshot(0.0).processed[0],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MakeRunStats, RatesComeFromTheMeasurementWindow) {
  Topology t = three_op_topology();
  CounterSnapshot begin;
  begin.at_seconds = 1.0;
  begin.processed = {100, 80, 60};
  begin.emitted = {100, 80, 60};
  CounterSnapshot end;
  end.at_seconds = 3.0;
  end.processed = {500, 380, 260};
  end.emitted = {500, 380, 260};
  CounterSnapshot totals;
  totals.at_seconds = 3.5;
  totals.processed = {550, 420, 300};
  totals.emitted = {550, 420, 300};

  const RunStats stats = make_run_stats(t, begin, end, totals, 3.5, 2);
  EXPECT_DOUBLE_EQ(stats.measured_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats.ops[0].departure_rate, 200.0);  // (500-100)/2
  EXPECT_DOUBLE_EQ(stats.ops[1].arrival_rate, 150.0);    // (380-80)/2
  EXPECT_EQ(stats.ops[2].processed, 300u);               // whole-run totals
  EXPECT_DOUBLE_EQ(stats.source_rate, 200.0);
  EXPECT_DOUBLE_EQ(stats.sink_rate, 100.0);  // sink departures (260-60)/2
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 3.5);
}

TEST(MakeRunStats, DegenerateWindowDoesNotDivideByZero) {
  Topology t = three_op_topology();
  CounterSnapshot snap;
  snap.at_seconds = 0.0;
  snap.processed = {0, 0, 0};
  snap.emitted = {0, 0, 0};
  const RunStats stats = make_run_stats(t, snap, snap, snap, 0.0, 0);
  EXPECT_DOUBLE_EQ(stats.source_rate, 0.0);
}

TEST(LatencyHistogram, QuantilesMatchKnownDistribution) {
  // 1..1000 ms recorded once each: p50 ~ 500 ms, p95 ~ 950 ms, p99 ~ 990
  // ms, all within the ~3% log-bucket resolution.
  LatencyHistogram h;
  for (int ms = 1; ms <= 1000; ++ms) h.record(ms * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.50), 0.500, 0.500 * 0.05);
  EXPECT_NEAR(h.quantile(0.95), 0.950, 0.950 * 0.05);
  EXPECT_NEAR(h.quantile(0.99), 0.990, 0.990 * 0.05);
  const LatencySummary s = h.summary();
  EXPECT_NEAR(s.mean, 0.5005, 0.5005 * 0.01);  // mean is exact, not bucketed
  EXPECT_NEAR(s.p50, 0.500, 0.500 * 0.05);
}

TEST(LatencyHistogram, SubMicrosecondAndExtremesAreClamped) {
  LatencyHistogram h;
  h.record(-1.0);    // clamps to 0
  h.record(0.0);
  h.record(5e-7);    // sub-microsecond lands in the first exact bucket
  h.record(1000.0);  // above the ~67 s cap: clamps to the top bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_LT(h.quantile(0.5), 2e-6);
  EXPECT_GT(h.quantile(1.0), 30.0);  // the cap region, not a wrapped bucket
}

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  const LatencySummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsAreExact) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.quantile(0.5), 1e-3, 1e-3 * 0.05);
}

TEST(StatsBoard, LatencyGateStartsClosedAndReportCollectsPerOp) {
  StatsBoard board(2);
  // The gate starts closed: engines open it only for the steady-state
  // window (the board itself records whatever callers pass it).
  EXPECT_FALSE(board.latency_enabled());
  board.set_latency_enabled(true);
  EXPECT_TRUE(board.latency_enabled());
  board.add_latency(1, 2e-3);
  board.add_end_to_end(5e-3);
  const LatencyReport report = board.latency_report();
  EXPECT_EQ(report.per_op[0].count, 0u);
  EXPECT_EQ(report.per_op[1].count, 1u);
  EXPECT_EQ(report.end_to_end.count, 1u);
  EXPECT_NEAR(report.end_to_end.p50, 5e-3, 5e-3 * 0.05);
}

TEST(MakeRunStats, AttachesLatencyReportWhenGiven) {
  Topology t = three_op_topology();
  CounterSnapshot snap;
  snap.at_seconds = 2.0;
  snap.processed = {10, 10, 10};
  snap.emitted = {10, 10, 10};
  StatsBoard board(3);
  board.add_latency(1, 4e-3);
  board.add_end_to_end(9e-3);
  const LatencyReport report = board.latency_report();
  const RunStats stats = make_run_stats(t, snap, snap, snap, 2.0, 0, &report);
  EXPECT_EQ(stats.ops[1].latency.count, 1u);
  EXPECT_NEAR(stats.ops[1].latency.p50, 4e-3, 4e-3 * 0.05);
  EXPECT_EQ(stats.end_to_end.count, 1u);
  EXPECT_NEAR(stats.end_to_end.p99, 9e-3, 9e-3 * 0.05);
}

TEST(FormatStats, ContainsNamesRatesAndSummary) {
  Topology t = three_op_topology();
  CounterSnapshot begin;
  begin.at_seconds = 0.0;
  begin.processed = {0, 0, 0};
  begin.emitted = {0, 0, 0};
  CounterSnapshot end;
  end.at_seconds = 2.0;
  end.processed = {200, 200, 200};
  end.emitted = {200, 200, 200};
  const RunStats stats = make_run_stats(t, begin, end, end, 2.0, 0);
  const std::string text = format_stats(t, stats);
  EXPECT_NE(text.find("mid"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);  // 200/2s
  EXPECT_NE(text.find("measured throughput"), std::string::npos);
  EXPECT_NE(text.find("dropped 0"), std::string::npos);
  EXPECT_NE(text.find("p50 ms"), std::string::npos);  // latency columns
  EXPECT_NE(text.find("no samples"), std::string::npos);  // nothing metered
}

TEST(FormatStats, PrintsLatencyColumnsAndEndToEndLine) {
  Topology t = three_op_topology();
  CounterSnapshot snap;
  snap.at_seconds = 2.0;
  snap.processed = {200, 200, 200};
  snap.emitted = {200, 200, 200};
  StatsBoard board(3);
  board.add_latency(1, 4e-3);
  board.add_end_to_end(12e-3);
  const LatencyReport report = board.latency_report();
  const RunStats stats = make_run_stats(t, snap, snap, snap, 2.0, 0, &report);
  const std::string text = format_stats(t, stats);
  EXPECT_NE(text.find("end-to-end latency: p50"), std::string::npos);
  EXPECT_NE(text.find("1 samples"), std::string::npos);
  EXPECT_NE(text.find("p99 ms"), std::string::npos);
}

TEST(StatsBoard, WindowHelpersGateLatencyAndTelemetryTogether) {
  StatsBoard board(2);
  TelemetryBoard telemetry(2);
  board.attach_telemetry(&telemetry);
  EXPECT_FALSE(board.latency_enabled());
  EXPECT_FALSE(telemetry.enabled());

  const CounterSnapshot begin = board.open_window(1.0);
  EXPECT_TRUE(board.latency_enabled());
  EXPECT_TRUE(telemetry.enabled());
  EXPECT_DOUBLE_EQ(begin.at_seconds, 1.0);
  ASSERT_EQ(begin.busy_ns.size(), 2u);  // telemetry rides in the snapshot

  telemetry.add_busy(0, 500'000'000);  // 0.5 s inside a 1 s window
  telemetry.add_blocked(1, 250'000'000);
  const CounterSnapshot end = board.close_window(2.0);
  EXPECT_FALSE(board.latency_enabled());
  EXPECT_FALSE(telemetry.enabled());
  ASSERT_EQ(end.busy_ns.size(), 2u);
  EXPECT_EQ(end.busy_ns[0] - begin.busy_ns[0], 500'000'000u);
  EXPECT_EQ(end.blocked_ns[1] - begin.blocked_ns[1], 250'000'000u);
}

TEST(StatsBoard, SnapshotWithoutTelemetryCarriesNoTelemetryVectors) {
  StatsBoard board(2);
  const CounterSnapshot snap = board.snapshot(0.5);
  EXPECT_TRUE(snap.busy_ns.empty());
  EXPECT_TRUE(snap.blocked_ns.empty());
  // make_run_stats then reports the run as telemetry-free: -1 sentinels.
  Topology::Builder b;
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_edge(0, 1);
  const Topology t = b.build();
  CounterSnapshot zero = snap;
  zero.processed = {0, 0};
  zero.emitted = {0, 0};
  const RunStats stats = make_run_stats(t, zero, zero, zero, 1.0, 0);
  EXPECT_FALSE(stats.has_telemetry);
  EXPECT_DOUBLE_EQ(stats.ops[0].busy_fraction, -1.0);
  EXPECT_DOUBLE_EQ(stats.ops[0].blocked_fraction, -1.0);
}

TEST(MakeRunStats, TelemetryFractionsNormalizeByReplicaCount) {
  Topology t = three_op_topology();
  CounterSnapshot begin;
  begin.at_seconds = 0.0;
  begin.processed = {0, 0, 0};
  begin.emitted = {0, 0, 0};
  begin.busy_ns = {0, 0, 0};
  begin.blocked_ns = {0, 0, 0};
  CounterSnapshot end = begin;
  end.at_seconds = 2.0;
  end.processed = {200, 200, 200};
  end.emitted = {200, 200, 200};
  // mid ran 3 replicas: 3 s of busy time in a 2 s window is rho = 0.5.
  end.busy_ns = {1'000'000'000, 3'000'000'000, 400'000'000};
  end.blocked_ns = {500'000'000, 0, 0};
  end.queue_peak = {0, 7, 3};
  const std::vector<int> replicas = {1, 3, 1};

  const RunStats stats =
      make_run_stats(t, begin, end, end, 2.0, 0, nullptr, &replicas);
  EXPECT_TRUE(stats.has_telemetry);
  EXPECT_DOUBLE_EQ(stats.ops[0].busy_fraction, 0.5);     // 1s / 2s
  EXPECT_DOUBLE_EQ(stats.ops[0].blocked_fraction, 0.25); // 0.5s / 2s
  EXPECT_DOUBLE_EQ(stats.ops[1].busy_fraction, 0.5);     // 3s / (2s x 3)
  EXPECT_DOUBLE_EQ(stats.ops[2].busy_fraction, 0.2);  // 0.4s / 2s
  EXPECT_EQ(stats.ops[1].queue_peak, 7u);
  EXPECT_EQ(stats.ops[2].queue_peak, 3u);

  // Without the replica vector every fraction divides by the window alone.
  const RunStats flat = make_run_stats(t, begin, end, end, 2.0, 0);
  EXPECT_DOUBLE_EQ(flat.ops[1].busy_fraction, 1.5);
}

TEST(FormatStats, PrintsTelemetryColumnsAndSchedulerLine) {
  Topology t = three_op_topology();
  CounterSnapshot begin;
  begin.at_seconds = 0.0;
  begin.processed = {0, 0, 0};
  begin.emitted = {0, 0, 0};
  begin.busy_ns = {0, 0, 0};
  begin.blocked_ns = {0, 0, 0};
  CounterSnapshot end = begin;
  end.at_seconds = 2.0;
  end.processed = {200, 200, 200};
  end.emitted = {200, 200, 200};
  end.busy_ns = {1'800'000'000, 900'000'000, 200'000'000};
  end.blocked_ns = {100'000'000, 0, 0};
  end.queue_peak = {0, 12, 4};
  RunStats stats = make_run_stats(t, begin, end, end, 2.0, 0);
  stats.scheduler.steals = 10;
  stats.scheduler.parks = 20;
  stats.scheduler.wakeups = 18;
  stats.scheduler.batches = 40;
  stats.scheduler.batch_messages = 120;
  stats.scheduler.max_batch = 16;
  const std::string text = format_stats(t, stats);
  EXPECT_NE(text.find("rho"), std::string::npos) << text;
  EXPECT_NE(text.find("blk"), std::string::npos) << text;
  EXPECT_NE(text.find("q_hi"), std::string::npos) << text;
  EXPECT_NE(text.find("12"), std::string::npos);  // mid's queue peak
  EXPECT_NE(text.find("scheduler: 10 steals, 20 parks"), std::string::npos) << text;

  // A telemetry-free run prints no rho/blk/q_hi columns at all.
  CounterSnapshot bare_begin = begin, bare_end = end;
  bare_begin.busy_ns.clear();
  bare_begin.blocked_ns.clear();
  bare_end.busy_ns.clear();
  bare_end.blocked_ns.clear();
  bare_end.queue_peak.clear();
  const RunStats bare = make_run_stats(t, bare_begin, bare_end, bare_end, 2.0, 0);
  const std::string bare_text = format_stats(t, bare);
  EXPECT_EQ(bare_text.find("rho"), std::string::npos) << bare_text;
  EXPECT_EQ(bare_text.find("q_hi"), std::string::npos) << bare_text;
}

}  // namespace
}  // namespace ss::runtime
