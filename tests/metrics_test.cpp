// Tests of the measurement plumbing: StatsBoard counters/snapshots,
// make_run_stats windowing, and the human-readable stats formatting.
#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ss::runtime {
namespace {

Topology three_op_topology() {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("mid", 1e-3);
  b.add_operator("out", 1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(StatsBoard, CountsAndSnapshots) {
  StatsBoard board(3);
  board.add_processed(0);
  board.add_processed(0);
  board.add_emitted(0);
  board.add_processed(2);
  const CounterSnapshot snap = board.snapshot(1.5);
  EXPECT_EQ(snap.processed[0], 2u);
  EXPECT_EQ(snap.emitted[0], 1u);
  EXPECT_EQ(snap.processed[1], 0u);
  EXPECT_EQ(snap.processed[2], 1u);
  EXPECT_DOUBLE_EQ(snap.at_seconds, 1.5);
}

TEST(StatsBoard, ConcurrentIncrementsAreExact) {
  StatsBoard board(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&board] {
      for (int i = 0; i < kPerThread; ++i) board.add_processed(0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(board.snapshot(0.0).processed[0],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MakeRunStats, RatesComeFromTheMeasurementWindow) {
  Topology t = three_op_topology();
  CounterSnapshot begin;
  begin.at_seconds = 1.0;
  begin.processed = {100, 80, 60};
  begin.emitted = {100, 80, 60};
  CounterSnapshot end;
  end.at_seconds = 3.0;
  end.processed = {500, 380, 260};
  end.emitted = {500, 380, 260};
  CounterSnapshot totals;
  totals.at_seconds = 3.5;
  totals.processed = {550, 420, 300};
  totals.emitted = {550, 420, 300};

  const RunStats stats = make_run_stats(t, begin, end, totals, 3.5, 2);
  EXPECT_DOUBLE_EQ(stats.measured_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats.ops[0].departure_rate, 200.0);  // (500-100)/2
  EXPECT_DOUBLE_EQ(stats.ops[1].arrival_rate, 150.0);    // (380-80)/2
  EXPECT_EQ(stats.ops[2].processed, 300u);               // whole-run totals
  EXPECT_DOUBLE_EQ(stats.source_rate, 200.0);
  EXPECT_DOUBLE_EQ(stats.sink_rate, 100.0);  // sink departures (260-60)/2
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 3.5);
}

TEST(MakeRunStats, DegenerateWindowDoesNotDivideByZero) {
  Topology t = three_op_topology();
  CounterSnapshot snap;
  snap.at_seconds = 0.0;
  snap.processed = {0, 0, 0};
  snap.emitted = {0, 0, 0};
  const RunStats stats = make_run_stats(t, snap, snap, snap, 0.0, 0);
  EXPECT_DOUBLE_EQ(stats.source_rate, 0.0);
}

TEST(FormatStats, ContainsNamesRatesAndSummary) {
  Topology t = three_op_topology();
  CounterSnapshot begin;
  begin.at_seconds = 0.0;
  begin.processed = {0, 0, 0};
  begin.emitted = {0, 0, 0};
  CounterSnapshot end;
  end.at_seconds = 2.0;
  end.processed = {200, 200, 200};
  end.emitted = {200, 200, 200};
  const RunStats stats = make_run_stats(t, begin, end, end, 2.0, 0);
  const std::string text = format_stats(t, stats);
  EXPECT_NE(text.find("mid"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);  // 200/2s
  EXPECT_NE(text.find("measured throughput"), std::string::npos);
  EXPECT_NE(text.find("dropped 0"), std::string::npos);
}

}  // namespace
}  // namespace ss::runtime
