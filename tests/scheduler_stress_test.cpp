// Randomized stress tests of the work-stealing pooled scheduler: 25
// Algorithm-5 topology shapes (fixed seeds) drained to completion on 2/4/8
// workers with exact tuple accounting, Table-1 throughput parity against
// the thread-per-actor backend, and a smaller StressTsan.* subset that the
// CI sanitizer job runs under ThreadSanitizer.
#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>

#include "gen/random_topology.hpp"
#include "gen/rng.hpp"
#include "runtime/engine.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

class BurstSource final : public SourceLogic {
 public:
  explicit BurstSource(std::int64_t count) : count_(count) {}
  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    out = Tuple{};
    out.id = next_id_++;
    out.key = out.id;
    return true;
  }

 private:
  std::int64_t count_;
  std::int64_t next_id_ = 0;
};

class PassThrough final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override { out.emit(item); }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<PassThrough>();
  }
};

/// An Algorithm-5 random DAG shape with near-zero service times, so drains
/// exercise graph structure and scheduling rather than pacing.
Topology fast_random_topology(std::uint64_t seed, int vertices, int edges) {
  Rng rng(seed);
  const TopologyShape shape = random_shape(rng, vertices, edges);
  Topology::Builder b;
  for (int v = 0; v < shape.num_vertices; ++v) {
    b.add_operator("op" + std::to_string(v), 1e-6);
  }
  for (const auto& [from, to] : shape.edges) {
    b.add_edge(static_cast<OpIndex>(from), static_cast<OpIndex>(to));
  }
  b.normalize_probabilities();
  return b.build();
}

AppFactory burst_factory(std::int64_t items) {
  AppFactory factory;
  factory.source = [items](OpIndex, const OperatorSpec&) {
    return std::make_unique<BurstSource>(items);
  };
  factory.logic = [](OpIndex, const OperatorSpec&) { return std::make_unique<PassThrough>(); };
  return factory;
}

EngineConfig pooled_config(int workers, std::size_t mailbox_capacity = 64) {
  EngineConfig cfg;
  cfg.mailbox_capacity = mailbox_capacity;
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = workers;
  return cfg;
}

/// Drains one random topology on the pool and checks exact accounting:
/// completion before the watchdog, zero drops, the source emitted every
/// item, and flow conservation at every unit-selectivity operator.
void drain_and_check(std::uint64_t seed, int workers, std::int64_t items,
                     std::size_t mailbox_capacity) {
  const int vertices = 5 + static_cast<int>(seed % 16);  // 5..20
  const int edges = vertices + 2 + static_cast<int>(seed % 7);
  Topology t = fast_random_topology(seed, vertices, edges);
  Engine engine(t, Deployment{}, burst_factory(items), pooled_config(workers, mailbox_capacity));
  RunStats stats = engine.run_until_complete(duration<double>(60.0));
  const std::string ctx =
      "seed " + std::to_string(seed) + ", workers " + std::to_string(workers);
  EXPECT_LT(stats.total_seconds, 60.0) << ctx << ": drain did not complete";
  EXPECT_EQ(stats.dropped, 0u) << ctx;
  EXPECT_EQ(stats.ops[0].processed, static_cast<std::uint64_t>(items)) << ctx;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(stats.ops[i].emitted, stats.ops[i].processed) << ctx << ", op " << i;
  }
}

TEST(SchedulerStress, TwentyFiveRandomTopologiesDrainExactly) {
  // Fixed seeds, worker counts cycling 2/4/8: the full randomized sweep.
  constexpr int kWorkerCycle[] = {2, 4, 8};
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    drain_and_check(seed, kWorkerCycle[seed % 3], /*items=*/1500, /*mailbox_capacity=*/64);
  }
}

TEST(SchedulerStress, TinyMailboxesForceTheBlockingPathAcrossSeeds) {
  // Capacity 4 makes nearly every send hit the BAS slow path, exercising
  // the cooperative-blocking spawn compensation on every shape.
  constexpr int kWorkerCycle[] = {2, 4, 8};
  for (std::uint64_t seed = 200; seed < 208; ++seed) {
    drain_and_check(seed, kWorkerCycle[seed % 3], /*items=*/800, /*mailbox_capacity=*/4);
  }
}

TEST(SchedulerStress, PoolMatchesThreadPerActorThroughputOnTable1) {
  // The Fig. 11 / Table 1 six-operator topology with its profiled service
  // times: the work-stealing pool must reproduce the thread-per-actor rate
  // within 5% even though steals and batched drains reorder actor claims.
  Topology::Builder b;
  const double service_ms[] = {1.0, 1.2, 0.7, 2.0, 1.5, 0.2};
  for (int i = 0; i < 6; ++i) b.add_operator("op" + std::to_string(i + 1), service_ms[i] * 1e-3);
  b.add_edge(0, 1, 0.7);
  b.add_edge(0, 2, 0.3);
  b.add_edge(1, 5, 1.0);
  b.add_edge(2, 3, 2.0 / 3.0);
  b.add_edge(2, 4, 1.0 / 3.0);
  b.add_edge(3, 4, 0.25);
  b.add_edge(3, 5, 0.75);
  b.add_edge(4, 5, 1.0);
  Topology t = b.build();

  Engine threads_engine(t, Deployment{}, synthetic_factory(), EngineConfig{});
  const RunStats threads_stats = threads_engine.run_for(duration<double>(2.5));

  Engine pool_engine(t, Deployment{}, synthetic_factory(), pooled_config(4));
  const RunStats pool_stats = pool_engine.run_for(duration<double>(2.5));

  ASSERT_GT(threads_stats.source_rate, 0.0);
  EXPECT_NEAR(pool_stats.source_rate, threads_stats.source_rate,
              0.05 * threads_stats.source_rate);
  EXPECT_EQ(pool_stats.dropped, 0u);
  // The pool meters end-to-end latency in the same window.
  EXPECT_GT(pool_stats.end_to_end.count, 0u);
}

TEST(SchedulerStress, SchedulerCountersAreConsistentAfterADrain) {
  // Hint accounting invariant of the work-stealing queues once quiescent:
  // every push was either popped locally, stolen, or discarded at shutdown
  // — and the drain-batch counters agree with the work actually done.
  Topology t = fast_random_topology(/*seed=*/42, /*vertices=*/10, /*edges=*/14);
  Engine engine(t, Deployment{}, burst_factory(/*items=*/2000), pooled_config(4));
  const RunStats stats = engine.run_until_complete(duration<double>(60.0));

  const SchedulerCounters& c = stats.scheduler;
  EXPECT_GT(c.pushes, 0u);
  EXPECT_EQ(c.pushes, c.local_pops + c.steals + c.discarded);
  // The default mailbox is the lock-free ring: the traffic volume that fed
  // the ready hints must show up in the ring ledger, and the ledger above
  // must keep balancing with the ring in the loop.  Hints are
  // edge-triggered, so messages dominate pushes — but a stalled consumer
  // (CPU steal on a shared host) fills the ring and diverts messages to
  // the spill queue, so the bound holds for the two paths together, not
  // for fast-path enqueues alone.
  EXPECT_GT(c.ring_enqueues, 0u);
  EXPECT_GE(c.ring_enqueues + c.ring_spills, c.pushes);
  // Every counted wakeup answers a park (shutdown wakeups are not counted).
  EXPECT_LE(c.wakeups, c.parks);
  // Batch statistics describe real drains.
  EXPECT_GT(c.batches, 0u);
  EXPECT_GE(c.batch_messages, c.batches);  // every batch drained >= 1 message
  EXPECT_GE(c.max_batch, 1u);
  EXPECT_LE(c.max_batch, 64u);  // the default drain quantum bounds a batch
  // The thread-per-actor backend has no such machinery: all zero.
  Engine plain(t, Deployment{}, burst_factory(/*items=*/100), EngineConfig{});
  const RunStats plain_stats = plain.run_until_complete(duration<double>(60.0));
  EXPECT_EQ(plain_stats.scheduler.pushes, 0u);
  EXPECT_EQ(plain_stats.scheduler.batches, 0u);
}

TEST(StressTsan, RandomTopologySubsetStaysRaceFree) {
  // ThreadSanitizer target (see .github/workflows/ci.yml): a smaller slice
  // of the sweep — TSAN's ~10x slowdown rules out all 25 seeds — hitting
  // steal vs local pop, batched drain vs producers, and on-ready hand-off.
  constexpr int kWorkerCycle[] = {2, 4, 8};
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    drain_and_check(seed, kWorkerCycle[seed % 3], /*items=*/600, /*mailbox_capacity=*/8);
  }
}

}  // namespace
}  // namespace ss::runtime
