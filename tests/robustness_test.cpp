// Robustness suite: fuzzed XML input (malformed documents must throw
// ss::Error, never crash or hang), large-topology stress through the whole
// pipeline, and a direct threaded-runtime-vs-simulator agreement check
// (the two "measured" engines must agree with each other, not only with
// the model).
#include <gtest/gtest.h>

#include <chrono>

#include "core/bottleneck.hpp"
#include "core/error.hpp"
#include "gen/random_topology.hpp"
#include "gen/rng.hpp"
#include "gen/workload.hpp"
#include "runtime/engine.hpp"
#include "sim/des.hpp"
#include "xmlio/topology_xml.hpp"

namespace ss {
namespace {

// ------------------------------------------------------------- XML fuzzing

constexpr const char* kSeedXml = R"(<?xml version="1.0"?>
<topology name="t">
  <operator name="src" impl="source" service-time="1" time-unit="ms"/>
  <operator name="agg" service-time="2" state="partitioned" input-selectivity="10">
    <keys distribution="zipf" count="10" alpha="1.5"/>
  </operator>
  <edge from="src" to="agg" probability="1.0"/>
</topology>
)";

class XmlFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzzTest, MutatedDocumentsThrowOrParseButNeverCrash) {
  Rng rng(GetParam());
  std::string base = kSeedXml;
  for (int round = 0; round < 400; ++round) {
    std::string mutated = base;
    const int mutations = rng.rand_int(1, 4);
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.rand_int(0, static_cast<int>(mutated.size()) - 1));
      switch (rng.rand_int(0, 3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(rng.rand_int(32, 126));
          break;
        case 1:  // delete a span
          mutated.erase(pos, static_cast<std::size_t>(rng.rand_int(1, 8)));
          break;
        case 2:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, static_cast<std::size_t>(rng.rand_int(1, 8))));
          break;
        default:  // inject XML-significant characters
          mutated.insert(pos, std::string(1, "<>&\"'="[rng.rand_int(0, 5)]));
          break;
      }
    }
    try {
      const Topology t = xml::load_topology(mutated);
      // Rarely the mutation stays valid: the result must then be usable.
      (void)steady_state(t);
    } catch (const Error&) {
      // Expected for the overwhelming majority of mutations.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Values(1u, 2u, 3u));

TEST(XmlRobustness, PathologicalDocuments) {
  EXPECT_THROW((void)xml::load_topology(std::string(1 << 16, '<')), Error);
  EXPECT_THROW((void)xml::load_topology("<topology>" + std::string(4096, ' ')), Error);
  // Deep nesting parses without stack issues at sane depths.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "<a>";
  for (int i = 0; i < 200; ++i) deep += "</a>";
  EXPECT_THROW((void)xml::load_topology(deep), Error);  // wrong root, parses fine
}

// ------------------------------------------------------------ large graphs

TEST(Stress, TwoHundredOperatorTopologyThroughTheWholePipeline) {
  Rng rng(909);
  const TopologyShape shape = random_shape(rng, 200, 240);
  const Topology t = assign_workload(shape, rng);

  const SteadyStateResult rates = steady_state(t);
  EXPECT_GT(rates.throughput(), 0.0);

  const BottleneckResult fission = eliminate_bottlenecks(t);
  EXPECT_GE(fission.analysis.throughput(), rates.throughput() * (1.0 - 1e-9));

  // Round-trip the 200-operator description through XML.
  const Topology reloaded = xml::load_topology(xml::save_topology(t));
  EXPECT_EQ(reloaded.num_operators(), 200u);
  EXPECT_NEAR(steady_state(reloaded).throughput(), rates.throughput(),
              1e-6 * rates.throughput());

  // And simulate it (short horizon: this is a smoke test, not a figure).
  sim::SimOptions options;
  options.duration = 10.0;
  options.replication = fission.plan;
  options.partitions = fission.partitions;
  const sim::SimResult sim = sim::simulate(t, options);
  EXPECT_GT(sim.throughput, 0.0);
}

// ----------------------------------------- engine vs simulator, directly

TEST(EngineVsSimulator, TwoMeasurementEnginesAgree) {
  // The threaded runtime and the DES are independent implementations of
  // the same semantics; on a mid-size topology their measured throughputs
  // must agree with each other (not merely with the model).
  Topology::Builder b;
  b.add_operator("src", 1.5e-3);
  b.add_operator("fork", 0.4e-3);
  b.add_operator("left", 2.5e-3);
  b.add_operator("right", 1.2e-3, StateKind::kStateless, Selectivity{1.0, 2.0});
  b.add_operator("join_sink", 0.8e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 0.6);
  b.add_edge(1, 3, 0.4);
  b.add_edge(2, 4);
  b.add_edge(3, 4);
  const Topology t = b.build();

  sim::SimOptions sim_options;
  sim_options.duration = 150.0;
  const double simulated = sim::simulate(t, sim_options).throughput;

  runtime::Engine engine(t, runtime::Deployment{}, runtime::synthetic_factory(), {});
  const double threaded =
      engine.run_for(std::chrono::duration<double>(2.5)).source_rate;

  EXPECT_NEAR(threaded, simulated, 0.12 * simulated)
      << "threaded " << threaded << " vs simulated " << simulated;
}

}  // namespace
}  // namespace ss
