// Tests of the runtime telemetry layer: TelemetryBoard gating and the
// blocked-charge context, measured-rho vs Algorithm 1's predicted rho on a
// live bottlenecked run, queue high-water marks under backpressure, the
// trace ring round-trip to Chrome trace-event JSON, and the JSONL metrics
// exporter.
#include "runtime/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/steady_state.hpp"
#include "runtime/engine.hpp"
#include "runtime/trace.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

TEST(TelemetryBoard, GateStartsClosedAndAccumulates) {
  TelemetryBoard board(2);
  EXPECT_FALSE(board.enabled());
  board.set_enabled(true);
  EXPECT_TRUE(board.enabled());
  board.add_busy(0, 100);
  board.add_busy(0, 50);
  board.add_blocked(1, 7);
  EXPECT_EQ(board.busy_ns(0), 150u);
  EXPECT_EQ(board.blocked_ns(0), 0u);
  EXPECT_EQ(board.blocked_ns(1), 7u);
  EXPECT_EQ(board.size(), 2u);
}

TEST(ScopedActorContext, ChargesTheCurrentOpAndScopesNest) {
  TelemetryBoard board(2);
  board.set_enabled(true);
  EXPECT_FALSE(blocked_metering_enabled());  // no context pinned yet
  {
    ScopedActorContext outer(board, 0);
    EXPECT_TRUE(blocked_metering_enabled());
    charge_blocked(100);
    {
      // A meta-group actor runs one member inside another's dispatch: the
      // inner scope charges its own op and restores the outer on exit.
      ScopedActorContext inner(board, 1);
      charge_blocked(50);
      EXPECT_EQ(inner.blocked_ns(), 50u);
    }
    EXPECT_EQ(outer.blocked_ns(), 100u);  // inner charges are not the outer's
    charge_blocked(10);
    EXPECT_EQ(outer.blocked_ns(), 110u);
  }
  EXPECT_FALSE(blocked_metering_enabled());
  EXPECT_EQ(board.blocked_ns(0), 110u);
  EXPECT_EQ(board.blocked_ns(1), 50u);
}

TEST(ScopedActorContext, DisabledBoardReportsMeteringOff) {
  TelemetryBoard board(1);  // gate closed
  ScopedActorContext ctx(board, 0);
  EXPECT_FALSE(blocked_metering_enabled());
}

// ------------------------------------------------------------ live engine

/// Two-operator pipeline: source paced at 1/source_s items/s feeding a
/// worker whose service time is worker_s — the Figure-9 shape reduced to
/// its essence (one saturating stage behind a paced source).
Topology pipeline(double source_s, double worker_s) {
  Topology::Builder b;
  b.add_operator("src", source_s);
  b.add_operator("work", worker_s);
  b.add_edge(0, 1);
  return b.build();
}

TEST(MeasuredUtilization, AgreesWithAlgorithm1OnThePooledEngine) {
  // src at ~2000/s, worker at 400 us/item -> predicted rho = 0.8.
  const Topology t = pipeline(5e-4, 4e-4);
  const SteadyStateResult predicted = steady_state(t);
  ASSERT_NEAR(predicted.rates[1].utilization, 0.8, 1e-9);

  EngineConfig config;
  config.scheduler = SchedulerKind::kPooled;
  config.workers = 4;
  Engine engine(t, Deployment{}, synthetic_factory(), config);
  const RunStats stats = engine.run_for(duration<double>(1.5));

  ASSERT_TRUE(stats.has_telemetry);
  // Acceptance bound: measured rho within 10% (relative) of Alg. 1 for the
  // bottleneck stage; the source is saturated (its pacing wait IS its
  // service), so its busy fraction sits near 1.
  EXPECT_NEAR(stats.ops[1].busy_fraction, 0.8, 0.08);
  EXPECT_GT(stats.ops[0].busy_fraction, 0.8);
  // No backpressure at rho 0.8: blocked stays marginal.
  EXPECT_LT(stats.ops[0].blocked_fraction, 0.10);
  // Busy + blocked never exceeds the window (small clock-edge slack).
  for (const OperatorStats& op : stats.ops) {
    EXPECT_LE(op.busy_fraction + op.blocked_fraction, 1.05);
  }
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(MeasuredUtilization, BackpressureShowsUpAsBlockedTimeAndQueuePeaks) {
  // src generates ~20x faster than the worker drains: the worker's mailbox
  // fills to capacity and the source spends the window blocked in send.
  const Topology t = pipeline(5e-5, 1e-3);
  EngineConfig config;
  config.mailbox_capacity = 32;
  Engine engine(t, Deployment{}, synthetic_factory(), config);
  const RunStats stats = engine.run_for(duration<double>(1.2));

  ASSERT_TRUE(stats.has_telemetry);
  // The sender is charged the wait; its busy fraction stays pure service.
  EXPECT_GT(stats.ops[0].blocked_fraction, 0.5);
  EXPECT_LT(stats.ops[0].busy_fraction, 0.5);
  // The worker is the saturated stage.
  EXPECT_GT(stats.ops[1].busy_fraction, 0.7);
  // Its input queue hit (or neared) capacity inside the window.
  EXPECT_GE(stats.ops[1].queue_peak, 16u);
  EXPECT_LE(stats.ops[1].queue_peak, 32u);
}

TEST(MeasuredUtilization, RunWithoutMetricsStillFillsTheSteadyWindow) {
  // Telemetry is window-gated by default (no --metrics-out, not elastic):
  // run_for opens it after warmup, so the columns still fill.
  const Topology t = pipeline(1e-3, 2e-4);
  Engine engine(t, Deployment{}, synthetic_factory(), EngineConfig{});
  const RunStats stats = engine.run_for(duration<double>(0.8));
  ASSERT_TRUE(stats.has_telemetry);
  EXPECT_NEAR(stats.ops[1].busy_fraction, 0.2, 0.1);
}

// ------------------------------------------------------------------ trace

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Trace, RoundTripsSpansAndInstantsToChromeJson) {
  trace::Tracer& tracer = trace::Tracer::instance();
  ASSERT_TRUE(tracer.start());
  EXPECT_FALSE(tracer.start());  // the first starter owns the trace
  EXPECT_TRUE(trace::enabled());

  tracer.set_thread_name("main-test-thread");
  {
    trace::Span span("outer", "test");
    span.set_arg("n", 42);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  trace::instant("tick", "test", "value", -7);
  std::thread other([] {
    trace::Tracer::instance().set_thread_name("other-test-thread");
    trace::Span span("inner", "test");
  });
  other.join();

  const std::string path = "telemetry_test_trace.json";
  const std::size_t events = tracer.stop_and_flush(path);
  EXPECT_FALSE(trace::enabled());
  EXPECT_GE(events, 3u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string json = slurp(path);
  std::remove(path.c_str());
  // Structural skeleton of the trace-event format.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Thread metadata lanes.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("main-test-thread"), std::string::npos);
  EXPECT_NE(json.find("other-test-thread"), std::string::npos);
  // The complete span with its arg, the instant with its scope marker.
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"n\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  // Balanced braces — a cheap well-formedness proxy without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.back(), '\n');
}

TEST(Trace, RecordingIsANoOpWhileDisarmed) {
  ASSERT_FALSE(trace::enabled());
  trace::instant("ignored", "test");
  { trace::Span span("also-ignored", "test"); }
  trace::Tracer& tracer = trace::Tracer::instance();
  ASSERT_TRUE(tracer.start());
  const std::string path = "telemetry_test_empty_trace.json";
  EXPECT_EQ(tracer.stop_and_flush(path), 0u);
  const std::string json = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(Trace, UnwritablePathThrowsAndDisarms) {
  trace::Tracer& tracer = trace::Tracer::instance();
  ASSERT_TRUE(tracer.start());
  trace::instant("doomed", "test");
  EXPECT_THROW(tracer.stop_and_flush("/nonexistent-dir/trace.json"), Error);
  EXPECT_FALSE(trace::enabled());  // a failed flush never leaves it armed
}

// --------------------------------------------------------------- exporter

MetricsSample synthetic_sample(int tick) {
  MetricsSample s;
  s.counters.at_seconds = 0.1 * tick;
  s.counters.processed = {static_cast<std::uint64_t>(100 * tick),
                          static_cast<std::uint64_t>(60 * tick)};
  s.counters.emitted = s.counters.processed;
  s.counters.busy_ns = {static_cast<std::uint64_t>(50'000'000 * tick), 0};
  s.counters.blocked_ns = {0, 0};
  s.counters.queue_depth = {3, 0};
  s.counters.queue_peak = {9, 1};
  s.scheduler.steals = static_cast<std::uint64_t>(tick);
  s.epoch = 1;
  return s;
}

TEST(MetricsExporter, WritesOneJsonObjectPerLineAndAFinalSample) {
  const std::string path = "telemetry_test_metrics.jsonl";
  std::atomic<int> tick{0};
  {
    MetricsExporter exporter([&] { return synthetic_sample(++tick); },
                             {"src", "work"}, path, 0.05);
    exporter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(180));
    exporter.stop();
    EXPECT_GE(exporter.lines_written(), 2u);  // periodic samples + final
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ops\":["), std::string::npos);
    EXPECT_NE(line.find("\"name\":\"src\""), std::string::npos);
    EXPECT_NE(line.find("\"sched\":{"), std::string::npos);
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
  }
  in.close();
  std::remove(path.c_str());
  EXPECT_GE(lines, 2u);
}

TEST(MetricsExporter, RatesAreDeltasOverThePeriod) {
  const std::string path = "telemetry_test_metrics_rates.jsonl";
  std::atomic<int> tick{0};
  {
    MetricsExporter exporter([&] { return synthetic_sample(++tick); },
                             {"src", "work"}, path, 0.04);
    exporter.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    exporter.stop();
  }
  // Every sample advances processed by 100 and time by 0.1 s: once a
  // previous sample exists the delta rate is 1000/s and rho 0.5.
  std::ifstream in(path);
  std::string line, second;
  std::getline(in, line);
  ASSERT_TRUE(static_cast<bool>(std::getline(in, second)));
  in.close();
  std::remove(path.c_str());
  EXPECT_NE(second.find("\"proc_rate\":1000"), std::string::npos);
  EXPECT_NE(second.find("\"rho\":0.5"), std::string::npos);
}

TEST(MetricsExporter, UnwritablePathThrowsBeforeTheRunStarts) {
  EXPECT_THROW(MetricsExporter([] { return MetricsSample{}; }, {},
                               "/nonexistent-dir/metrics.jsonl", 0.5),
               Error);
}

TEST(MetricsExporter, EngineRejectsUnwritableMetricsPathBeforeStarting) {
  const Topology t = pipeline(1e-3, 1e-4);
  EngineConfig config;
  config.metrics_path = "/nonexistent-dir/metrics.jsonl";
  Engine engine(t, Deployment{}, synthetic_factory(), config);
  EXPECT_THROW(engine.run_for(duration<double>(0.2)), Error);
}

}  // namespace
}  // namespace ss::runtime
