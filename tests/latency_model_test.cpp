// Validation of the percentile latency model against DES virtual time.
//
// Seed-pinned Algorithm-5 sweep: for each testbed topology we run Alg. 2
// (fission), predict the end-to-end tuple latency (mean and p99) with
// estimate_latency(), then measure the same quantity in the discrete-event
// simulator (source emission to sink departure, virtual time) under the
// same plan, buffer bound and exponential service law.  The relative
// errors are pinned by a tightening-only golden baseline:
// tests/golden/latency_model.txt records the per-topology errors at the
// time the model landed, and the test fails if any error regresses past
// the recorded value (+ a small float-stability slack).  Improvements are
// landed by regenerating the file (LATENCY_MODEL_WRITE_GOLDEN=1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bottleneck.hpp"
#include "core/latency.hpp"
#include "gen/workload.hpp"
#include "sim/des.hpp"

#ifndef SS_GOLDEN_DIR
#define SS_GOLDEN_DIR "tests/golden"
#endif

namespace ss {
namespace {

constexpr std::uint64_t kTestbedSeed = 2018;
constexpr int kTopologies = 25;
constexpr std::size_t kBuffer = 64;
constexpr double kSimSeconds = 50.0;

// Slack added on top of each golden error bound: the sweep is fully
// deterministic for a given libm, but cross-platform math differences can
// move a percentile by a bucket.
constexpr double kGoldenSlack = 0.03;

struct SweepPoint {
  int index = 0;
  double pred_mean = 0.0;
  double meas_mean = 0.0;
  double mean_err = 0.0;
  double pred_p99 = 0.0;
  double meas_p99 = 0.0;
  double p99_err = 0.0;
  std::uint64_t samples = 0;
};

double rel_err(double predicted, double measured) {
  if (measured <= 0.0) return predicted <= 0.0 ? 0.0 : 1e9;
  return std::abs(predicted - measured) / measured;
}

std::vector<SweepPoint> run_sweep(int count, double sim_seconds) {
  const auto testbed = make_testbed(kTestbedSeed, count);
  std::vector<SweepPoint> points;
  points.reserve(testbed.size());
  for (std::size_t i = 0; i < testbed.size(); ++i) {
    const Topology& t = testbed[i];
    const BottleneckResult opt = eliminate_bottlenecks(t);
    const LatencyEstimate est = estimate_latency(t, opt.analysis, opt.plan, kBuffer);

    sim::SimOptions so;
    so.duration = sim_seconds;
    so.buffer_capacity = kBuffer;
    so.seed = 77 + i;
    so.replication = opt.plan;
    so.partitions = opt.partitions;
    sim::SimResult sr = sim::simulate(t, so);
    if (sr.end_to_end.count < 2000) {
      // Heavily filtering topologies emit few results per simulated
      // second; extend the virtual-time horizon until the percentile
      // estimate has a usable sample count.
      const double factor =
          std::min(3000.0 / std::max<double>(sr.end_to_end.count, 1.0), 80.0);
      so.duration = sim_seconds * factor;
      sr = sim::simulate(t, so);
    }

    if (std::getenv("LATENCY_MODEL_DEBUG") != nullptr) {
      std::printf("== topology %zu: ideal=%d unresolved=%zu\n", i, opt.reaches_ideal ? 1 : 0,
                  opt.unresolved.size());
      for (OpIndex j = 0; j < t.num_operators(); ++j) {
        std::printf(
            "   %-16s n=%d pmax=%.4f rho=%.3f cong=%d pred_W=%8.3fms sim_W=%8.3fms "
            "simQ=%6.1f blk=%.2f sel_in=%.0f lam=%8.1f\n",
            t.op(j).name.c_str(), opt.plan.replicas_of(j), opt.plan.max_share_of(j),
            opt.analysis.rates[j].utilization, est.congested[j] ? 1 : 0,
            est.response[j] * 1e3, sr.ops[j].mean_sojourn * 1e3, sr.ops[j].mean_queue,
            sr.ops[j].blocked_fraction, t.op(j).selectivity.input,
            opt.analysis.rates[j].arrival);
      }
    }

    SweepPoint p;
    p.index = static_cast<int>(i);
    p.pred_mean = est.sojourn_mean;
    p.meas_mean = sr.end_to_end.mean;
    p.mean_err = rel_err(p.pred_mean, p.meas_mean);
    p.pred_p99 = est.sojourn.p99;
    p.meas_p99 = sr.end_to_end.p99;
    p.p99_err = rel_err(p.pred_p99, p.meas_p99);
    p.samples = sr.end_to_end.count;
    points.push_back(p);
  }
  return points;
}

std::string golden_path() { return std::string(SS_GOLDEN_DIR) + "/latency_model.txt"; }

struct GoldenEntry {
  double mean_err = 0.0;
  double p99_err = 0.0;
};

std::vector<GoldenEntry> load_golden() {
  std::ifstream in(golden_path());
  std::vector<GoldenEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int index = 0;
    GoldenEntry e;
    if (ls >> index >> e.mean_err >> e.p99_err) entries.push_back(e);
  }
  return entries;
}

void write_golden(const std::vector<SweepPoint>& points) {
  std::ofstream out(golden_path());
  out << "# Tightening-only baseline of the latency-model validation sweep.\n"
      << "# Columns: topology-index mean-rel-err p99-rel-err (fractions).\n"
      << "# Regenerate with LATENCY_MODEL_WRITE_GOLDEN=1 ./latency_model_test\n"
      << "# only when the model improves; the test fails on regression.\n";
  char buf[96];
  for (const SweepPoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%d %.4f %.4f\n", p.index, p.mean_err, p.p99_err);
    out << buf;
  }
}

void print_table(const std::vector<SweepPoint>& points) {
  std::printf("  idx  pred_mean  meas_mean  err%%   pred_p99  meas_p99  err%%   samples\n");
  for (const SweepPoint& p : points) {
    std::printf("  %3d  %8.2fms %8.2fms %5.1f  %7.2fms %7.2fms %5.1f  %7llu\n", p.index,
                p.pred_mean * 1e3, p.meas_mean * 1e3, p.mean_err * 100.0, p.pred_p99 * 1e3,
                p.meas_p99 * 1e3, p.p99_err * 100.0,
                static_cast<unsigned long long>(p.samples));
  }
}

TEST(LatencyModel, SweepAgainstGolden) {
  const std::vector<SweepPoint> points = run_sweep(kTopologies, kSimSeconds);
  ASSERT_EQ(points.size(), static_cast<std::size_t>(kTopologies));
  print_table(points);

  for (const SweepPoint& p : points) {
    EXPECT_GT(p.samples, 1000u) << "topology " << p.index << " produced too few tuples";
  }

  // Acceptance bar: predicted p99 within 25% of the DES for >= 90% of the
  // testbed (the tail is what the SLO constraint optimizes against), and
  // the mean within 25% for >= 84% (a handful of near-critical topologies
  // sit just past the bar; the golden baseline below pins each one from
  // regressing).
  int p99_within = 0;
  int mean_within = 0;
  for (const SweepPoint& p : points) {
    if (p.p99_err <= 0.25) ++p99_within;
    if (p.mean_err <= 0.25) ++mean_within;
  }
  EXPECT_GE(p99_within * 10, kTopologies * 9)
      << "predicted p99 within 25% on only " << p99_within << "/" << kTopologies;
  EXPECT_GE(mean_within * 25, kTopologies * 21)
      << "predicted mean within 25% on only " << mean_within << "/" << kTopologies;

  if (std::getenv("LATENCY_MODEL_WRITE_GOLDEN") != nullptr) {
    write_golden(points);
    GTEST_SKIP() << "golden baseline rewritten at " << golden_path();
  }

  // Tightening-only per-topology regression gate.
  const std::vector<GoldenEntry> golden = load_golden();
  ASSERT_EQ(golden.size(), points.size())
      << "golden baseline missing or stale: regenerate with "
         "LATENCY_MODEL_WRITE_GOLDEN=1 ./latency_model_test";
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_LE(points[i].mean_err, golden[i].mean_err + kGoldenSlack)
        << "mean error regressed on topology " << i;
    EXPECT_LE(points[i].p99_err, golden[i].p99_err + kGoldenSlack)
        << "p99 error regressed on topology " << i;
  }
}

// Short subset exercised under TSAN in CI (the sweep itself is
// single-threaded; this guards the model/DES pairing, not concurrency).
TEST(LatencyModelTsan, SmokeSweep) {
  const std::vector<SweepPoint> points = run_sweep(3, 10.0);
  ASSERT_EQ(points.size(), 3u);
  for (const SweepPoint& p : points) {
    EXPECT_GT(p.samples, 100u);
    EXPECT_LT(p.p99_err, 0.5) << "topology " << p.index;
  }
}

}  // namespace
}  // namespace ss
