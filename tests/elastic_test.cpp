// Elastic re-deployment end-to-end: an under-provisioned run (rho > 1 at a
// heavy stage) re-deploys itself mid-stream via the ReconfigController
// without losing a tuple, the post-reconfig throughput matches the Alg. 1
// prediction of the chosen deployment, and the per-key state of a
// partitioned-stateful operator survives a replica widening.  Plus units of
// the measured-rate re-optimization (core/optimizer reoptimize) and the
// deployment diff the switch-over consumes.
#include "runtime/controller.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "ops/keyed.hpp"
#include "runtime/engine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

/// src generates 1000/s but the heavy stage serves only ~278/s: the
/// sequential deployment runs at rho = 3.6 and Algorithms 1-3 want four
/// replicas of "heavy".
Topology under_provisioned() {
  Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  b.add_operator("heavy", 3.6e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

TEST(Reoptimize, MeasuredRatesRecommendReplicasForTheBottleneck) {
  const Topology t = under_provisioned();
  // The measured window of a backpressured run: every stage throttled to
  // the bottleneck's service rate, unit selectivity observed everywhere.
  std::vector<MeasuredOperator> measured(t.num_operators());
  for (auto& m : measured) {
    m.samples = 1000;
    m.processed_rate = 278.0;
    m.emitted_rate = 278.0;
  }
  const ReoptimizeResult r = reoptimize(t, Deployment{}, measured);
  EXPECT_TRUE(r.enough_samples);
  ASSERT_TRUE(r.diff.any());
  EXPECT_TRUE(r.diff.changed(1));
  EXPECT_FALSE(r.diff.changed(0));
  EXPECT_GE(r.next.replication.replicas_of(1), 4);
  EXPECT_NEAR(r.predicted_current, 278.0, 5.0);
  EXPECT_NEAR(r.predicted_next, 1000.0, 50.0);
  EXPECT_GT(r.gain, 1.0);
  EXPECT_TRUE(r.beneficial);
}

TEST(Reoptimize, InsufficientSamplesKeepTheDeployment) {
  const Topology t = under_provisioned();
  std::vector<MeasuredOperator> measured(t.num_operators());
  for (auto& m : measured) m.samples = 10;  // below min_samples
  const ReoptimizeResult r = reoptimize(t, Deployment{}, measured);
  EXPECT_FALSE(r.enough_samples);
  EXPECT_FALSE(r.beneficial);
}

TEST(DeploymentDiff, OnlyTouchedOperatorsChange) {
  Deployment base;
  Deployment widened;
  widened.replication.replicas = {1, 3, 1};
  const DeploymentDiff d = diff_deployments(3, base, widened);
  EXPECT_TRUE(d.any());
  EXPECT_EQ(d.ops_changed, 1);
  EXPECT_FALSE(d.changed(0));
  EXPECT_TRUE(d.changed(1));
  EXPECT_FALSE(d.changed(2));
  EXPECT_FALSE(diff_deployments(3, base, Deployment{}).any());
}

TEST(Elastic, UnderProvisionedFiniteRunRedeploysAndKeepsEveryTuple) {
  const Topology t = under_provisioned();
  EngineConfig cfg;
  cfg.elastic = true;
  cfg.reconfig_period = 0.25;
  cfg.reconfig_threshold = 0.10;
  constexpr std::int64_t kItems = 2500;
  Engine engine(t, Deployment{}, synthetic_factory(1.0, kItems), cfg);
  const RunStats stats = engine.run_until_complete(duration<double>(60.0));

  ASSERT_NE(engine.controller(), nullptr);
  bool redeployed = false;
  for (const ReconfigDecision& d : engine.controller()->decisions()) {
    redeployed = redeployed || d.redeployed;
  }
  EXPECT_TRUE(redeployed);
  EXPECT_GE(stats.reconfigurations, 1);
  EXPECT_EQ(stats.epochs, stats.reconfigurations + 1);

  // Exact accounting across the switch-over(s): nothing dropped, the source
  // produced every item, flow conserved at every unit-selectivity stage.
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.ops[0].processed, static_cast<std::uint64_t>(kItems));
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(stats.ops[i].emitted, stats.ops[i].processed) << "op " << i;
  }
}

TEST(Elastic, PostReconfigThroughputMatchesPrediction) {
  const Topology t = under_provisioned();
  EngineConfig cfg;
  cfg.elastic = true;
  cfg.reconfig_period = 0.25;
  cfg.reconfig_threshold = 0.10;
  Engine engine(t, Deployment{}, synthetic_factory(), cfg);  // unbounded source
  const RunStats stats = engine.run_for(duration<double>(3.5));

  ASSERT_NE(engine.controller(), nullptr);
  const std::vector<ReconfigDecision> decisions = engine.controller()->decisions();
  const ReconfigDecision* redeploy = nullptr;
  for (const ReconfigDecision& d : decisions) {
    if (d.redeployed) {
      redeploy = &d;
      break;
    }
  }
  ASSERT_NE(redeploy, nullptr) << "controller never re-deployed";
  ASSERT_GT(redeploy->predicted_next, 0.0);
  // The switch-over landed before the steady-state window opened, so the
  // measured rate is pure post-reconfig behaviour.
  EXPECT_LT(redeploy->at_seconds, cfg.warmup_fraction * 3.5);
  EXPECT_NEAR(stats.source_rate, redeploy->predicted_next,
              0.10 * redeploy->predicted_next);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Elastic, SloBreachRedeploysAndLandsUnderTheSlo) {
  // The SLO path of the controller, isolated from the throughput path: the
  // gain threshold is set absurdly high (500%), so the only way this
  // under-provisioned run may legally re-deploy is reoptimize()'s
  // repairs_tail route -- the *measured* windowed p99 (a full mailbox at
  // the worker: ~64 x 1.6 ms of standing queue) breaching config.slo_p99.
  Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  b.add_operator("worker", 1.6e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Topology t = b.build();

  EngineConfig cfg;
  cfg.elastic = true;
  cfg.reconfig_period = 0.25;
  cfg.reconfig_threshold = 5.0;  // rate path disabled: nothing gains 500%
  cfg.slo_p99 = 0.025;           // 25 ms; the standing queue sits near 100 ms
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = 4;
  Engine engine(t, Deployment{}, synthetic_factory(), cfg);
  const RunStats stats = engine.run_for(duration<double>(4.0));

  ASSERT_NE(engine.controller(), nullptr);
  const ReconfigDecision* slo_redeploy = nullptr;
  for (const ReconfigDecision& d : engine.controller()->decisions()) {
    if (d.redeployed && d.slo_breached) {
      slo_redeploy = &d;
      break;
    }
  }
  ASSERT_NE(slo_redeploy, nullptr) << "controller never re-deployed on the SLO breach";
  EXPECT_GT(slo_redeploy->measured_p99, cfg.slo_p99);
  EXPECT_NE(slo_redeploy->reason.find("slo breach"), std::string::npos)
      << slo_redeploy->reason;
  // The recommended plan must predict a repaired tail (that is what
  // justified the move), and the predictions surface on the decision.
  EXPECT_GT(slo_redeploy->predicted_p99_next, 0.0);
  EXPECT_LT(slo_redeploy->predicted_p99_next, slo_redeploy->measured_p99);

  // The steady-state window opens after the switch-over: the measured tail
  // must land under the SLO, and the switch must not cost a tuple.
  EXPECT_EQ(stats.dropped, 0u);
  ASSERT_GT(stats.end_to_end.count, 0u);
  EXPECT_LE(stats.end_to_end.p99, cfg.slo_p99);
  // Predictions ride along in RunStats for every epoch.
  EXPECT_TRUE(stats.predicted.valid);
  EXPECT_GT(stats.predicted.p99, 0.0);
}

TEST(Elastic, RedeployDecisionsUseProfilerEstimates) {
  // Pooled under-provisioned run with the online profiler on (the
  // default): the saturated heavy stage produces multi-item drain slices
  // immediately, so by the first decision window the controller's
  // measured service times come from the estimator, not the raw busy
  // quotient — visible as ops_estimated on the decision.  The estimate
  // itself must match the synthetic ground truth within the 15% tolerance.
  const Topology t = under_provisioned();
  EngineConfig cfg;
  cfg.elastic = true;
  cfg.reconfig_period = 0.75;  // one profiler-confident window, then decide
  cfg.reconfig_threshold = 0.10;
  cfg.profile_period = 0.1;
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = 4;
  Engine engine(t, Deployment{}, synthetic_factory(), cfg);
  const RunStats stats = engine.run_for(duration<double>(3.5));

  ASSERT_NE(engine.controller(), nullptr);
  const ReconfigDecision* redeploy = nullptr;
  for (const ReconfigDecision& d : engine.controller()->decisions()) {
    if (d.redeployed) {
      redeploy = &d;
      break;
    }
  }
  ASSERT_NE(redeploy, nullptr) << "controller never re-deployed";
  EXPECT_GE(redeploy->ops_estimated, 1)
      << "the re-deployment was not informed by profiler estimates";

  ASSERT_TRUE(stats.has_profile);
  const ProfileEstimate& heavy = stats.profile[1];
  ASSERT_GT(heavy.estimated_rate, 0.0);
  EXPECT_GE(heavy.confidence, 0.5);
  // The 15% accuracy claim is pinned by the convergence testbed in
  // profiler_test; here the stage is *saturated*, where paced-source debt
  // repayment under transient host CPU steal can shave ~20% off burst
  // slices, so this behavioural test only requires the right ballpark.
  const double truth = t.op(1).service_time;  // 3.6 ms synthetic wait
  EXPECT_NEAR(1.0 / heavy.estimated_rate, truth, 0.30 * truth);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(Elastic, BelowSaturationEstimatesReachTheController) {
  // A run with ample headroom everywhere (rho ~0.5 at the only real
  // stage): the throughput path never wants to move, but the controller's
  // windows must still be fed confident sub-saturation estimates — the
  // information a later rate surge would redeploy from.
  Topology::Builder b;
  b.add_operator("src", 0.5e-3);     // 2000/s
  b.add_operator("mid", 0.25e-3);    // capacity 4000/s -> rho 0.5
  b.add_operator("sink", 0.02e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Topology t = b.build();

  EngineConfig cfg;
  cfg.elastic = true;
  cfg.reconfig_period = 0.5;
  cfg.profile_period = 0.1;
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = 4;
  Engine engine(t, Deployment{}, synthetic_factory(), cfg);
  const RunStats stats = engine.run_for(duration<double>(3.0));

  ASSERT_NE(engine.controller(), nullptr);
  const std::vector<ReconfigDecision> decisions = engine.controller()->decisions();
  ASSERT_FALSE(decisions.empty());
  int estimated_windows = 0;
  for (const ReconfigDecision& d : decisions) {
    EXPECT_FALSE(d.redeployed) << d.reason;  // nothing to gain at rho 0.5
    if (d.ops_estimated >= 1) ++estimated_windows;
  }
  EXPECT_GE(estimated_windows, 1)
      << "no decision window saw a confident below-saturation estimate";

  // The estimate reconstructed the true 0.25 ms service time even though
  // the operator idled half the time.
  ASSERT_TRUE(stats.has_profile);
  const ProfileEstimate& mid = stats.profile[1];
  ASSERT_GT(mid.estimated_rate, 0.0);
  const double truth = t.op(1).service_time;
  EXPECT_NEAR(1.0 / mid.estimated_rate, truth, 0.15 * truth);
}

// ---------------------------------------------------------------------------
// Key-state migration

/// Paced source cycling keys 0..keys-1 round-robin, f[0] = 1.
class RoundRobinKeySource final : public SourceLogic {
 public:
  RoundRobinKeySource(std::int64_t count, int keys, double interval)
      : count_(count), keys_(keys), interval_(interval) {}

  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    {
      BlockingSection blocking;
      waiter_.wait(interval_);
    }
    out = Tuple{};
    out.id = next_id_;
    out.key = next_id_ % keys_;
    out.f[0] = 1.0;
    ++next_id_;
    return true;
  }

 private:
  std::int64_t count_;
  int keys_;
  double interval_;
  PacedWaiter waiter_;
  std::int64_t next_id_ = 0;
};

/// Terminal operator recording every tuple it sees.
class CaptureSink final : public OperatorLogic {
 public:
  CaptureSink(std::mutex& mu, std::vector<Tuple>& out) : mu_(mu), out_(out) {}

  void process(const Tuple& item, OpIndex, Collector&) override {
    std::lock_guard lock(mu_);
    out_.push_back(item);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<CaptureSink>(mu_, out_);
  }

 private:
  std::mutex& mu_;
  std::vector<Tuple>& out_;
};

TEST(Elastic, KeyStateSurvivesReplicaWidening) {
  constexpr int kKeys = 16;
  constexpr std::int64_t kItems = 4000;
  Topology::Builder b;
  b.add_operator("src", 0.1e-3);
  OperatorSpec count;
  count.name = "count";
  count.service_time = 0.02e-3;
  count.state = StateKind::kPartitionedStateful;
  count.keys = KeyDistribution::uniform(kKeys);
  b.add_operator(std::move(count));
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Topology t = b.build();

  std::mutex mu;
  std::vector<Tuple> captured;
  AppFactory factory;
  factory.source = [&](OpIndex, const OperatorSpec&) {
    return std::make_unique<RoundRobinKeySource>(kItems, kKeys, 0.1e-3);
  };
  factory.logic = [&](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ops::KeyedCounter>();
    return std::make_unique<CaptureSink>(mu, captured);
  };

  EngineConfig cfg;
  cfg.assign_keys_at_emitter = false;  // real tuple keys drive the partition map
  Engine engine(t, Deployment{}, std::move(factory), cfg);

  RunStats stats;
  std::atomic<bool> done{false};
  std::thread runner([&] {
    stats = engine.run_until_complete(duration<double>(60.0));
    done.store(true, std::memory_order_release);
  });
  // Widen the counter to two replicas mid-stream (the run lasts ~0.4s).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Deployment widened;
  widened.replication.replicas = {1, 2, 1};
  bool switched = false;
  while (!switched && !done.load(std::memory_order_acquire)) {
    switched = engine.reconfigure(widened);
    if (!switched) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  runner.join();

  EXPECT_TRUE(switched);
  EXPECT_EQ(stats.reconfigurations, 1);
  EXPECT_GE(stats.keys_migrated, 1u);
  EXPECT_EQ(stats.dropped, 0u);

  // Continuity: the running count of every key must reach the key's total
  // tuple count — a reset at the switch-over would cap the maximum below it.
  std::map<std::int64_t, double> max_count;
  std::map<std::int64_t, std::uint64_t> total;
  ASSERT_EQ(captured.size(), static_cast<std::size_t>(kItems));
  for (const Tuple& tp : captured) {
    max_count[tp.key] = std::max(max_count[tp.key], tp.f[1]);
    ++total[tp.key];
  }
  ASSERT_EQ(total.size(), static_cast<std::size_t>(kKeys));
  for (const auto& [key, count_of_key] : total) {
    EXPECT_EQ(max_count[key], static_cast<double>(count_of_key))
        << "key " << key << ": running count reset across the switch-over";
  }
}

}  // namespace
}  // namespace ss::runtime
