// Unit tests for the topology -> actor-graph mapping: worker actors,
// fission expansion (emitter/replicas/collector), fusion meta actors, and
// the shutdown-channel bookkeeping.
#include "runtime/plan.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace ss::runtime {
namespace {

Topology pipeline4() {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_operator("sink", 1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

int count_kind(const ActorGraph& g, ActorKind kind) {
  int n = 0;
  for (const ActorSpec& a : g.actors) {
    if (a.kind == kind) ++n;
  }
  return n;
}

TEST(ActorGraph, SequentialPipelineIsOneActorPerOperator) {
  Topology t = pipeline4();
  ActorGraph g = ActorGraph::build(t, Deployment{});
  EXPECT_EQ(g.num_actors(), 4u);
  EXPECT_EQ(count_kind(g, ActorKind::kSource), 1);
  EXPECT_EQ(count_kind(g, ActorKind::kWorker), 3);
  EXPECT_EQ(g.source_actor, g.entry[0]);
  for (OpIndex i = 0; i < 4; ++i) EXPECT_EQ(g.entry[i], g.exit[i]);
}

TEST(ActorGraph, ShutdownChannelCountsMatchEdges) {
  Topology t = pipeline4();
  ActorGraph g = ActorGraph::build(t, Deployment{});
  // src -> a -> b -> sink: each non-source actor expects one token.
  EXPECT_EQ(g.actors[static_cast<std::size_t>(g.entry[1])].incoming_channels, 1);
  EXPECT_EQ(g.actors[static_cast<std::size_t>(g.entry[3])].incoming_channels, 1);
  EXPECT_EQ(g.actors[static_cast<std::size_t>(g.exit[0])].downstream.size(), 1u);
}

TEST(ActorGraph, FissionExpandsToEmitterReplicasCollector) {
  Topology t = pipeline4();
  Deployment d;
  d.replication.replicas = {1, 3, 1, 1};
  ActorGraph g = ActorGraph::build(t, d);
  // 3 plain + (1 emitter + 3 replicas + 1 collector) = 8 actors.
  EXPECT_EQ(g.num_actors(), 8u);
  EXPECT_EQ(count_kind(g, ActorKind::kEmitter), 1);
  EXPECT_EQ(count_kind(g, ActorKind::kReplica), 3);
  EXPECT_EQ(count_kind(g, ActorKind::kCollector), 1);

  const ActorSpec& emitter = g.actors[static_cast<std::size_t>(g.entry[1])];
  EXPECT_EQ(emitter.kind, ActorKind::kEmitter);
  EXPECT_EQ(emitter.downstream.size(), 3u);  // one channel per replica
  const ActorSpec& collector = g.actors[static_cast<std::size_t>(g.exit[1])];
  EXPECT_EQ(collector.kind, ActorKind::kCollector);
  EXPECT_EQ(collector.incoming_channels, 3);  // one per replica
  // Each replica: one in-channel (emitter), one out-channel (collector).
  for (const ActorSpec& a : g.actors) {
    if (a.kind == ActorKind::kReplica) {
      EXPECT_EQ(a.incoming_channels, 1);
      ASSERT_EQ(a.downstream.size(), 1u);
      EXPECT_EQ(a.downstream[0], g.exit[1]);
    }
  }
}

TEST(ActorGraph, FusionCollapsesMembersIntoOneMetaActor) {
  Topology t = pipeline4();
  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 2}, "fused"});
  ActorGraph g = ActorGraph::build(t, d);
  EXPECT_EQ(g.num_actors(), 3u);  // src, meta, sink
  EXPECT_EQ(count_kind(g, ActorKind::kMeta), 1);
  EXPECT_EQ(g.entry[1], g.entry[2]);
  EXPECT_EQ(g.exit[1], g.exit[2]);
  EXPECT_EQ(g.group_of[1], 0);
  EXPECT_EQ(g.group_of[2], 0);
  EXPECT_EQ(g.group_of[0], -1);
  const ActorSpec& meta = g.actors[static_cast<std::size_t>(g.entry[1])];
  EXPECT_EQ(meta.name, "fused");
  EXPECT_EQ(meta.members, (std::vector<OpIndex>{1, 2}));  // topological order
  // Channels: src->meta and meta->sink; the internal 1->2 edge vanishes.
  EXPECT_EQ(meta.incoming_channels, 1);
  EXPECT_EQ(meta.downstream.size(), 1u);
}

TEST(ActorGraph, MetaMembersSortedTopologically) {
  Topology t = pipeline4();
  Deployment d;
  d.fusions.push_back(FusionSpec{{2, 1}, ""});  // deliberately reversed
  ActorGraph g = ActorGraph::build(t, d);
  const ActorSpec& meta = g.actors[static_cast<std::size_t>(g.entry[1])];
  EXPECT_EQ(meta.members, (std::vector<OpIndex>{1, 2}));
}

TEST(ActorGraph, RejectsReplicatedSource) {
  Topology t = pipeline4();
  Deployment d;
  d.replication.replicas = {2, 1, 1, 1};
  EXPECT_THROW((void)ActorGraph::build(t, d), Error);
}

TEST(ActorGraph, RejectsReplicatedFusedMember) {
  Topology t = pipeline4();
  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 2}, ""});
  d.replication.replicas = {1, 2, 1, 1};
  EXPECT_THROW((void)ActorGraph::build(t, d), Error);
}

TEST(ActorGraph, RejectsOverlappingFusionGroups) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_operator("c", 1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Topology t = b.build();
  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 2}, ""});
  d.fusions.push_back(FusionSpec{{2, 3}, ""});
  EXPECT_THROW((void)ActorGraph::build(t, d), Error);
}

TEST(ActorGraph, AcceptsMultiEntryFusionGroups) {
  // {a, b} has two front-ends (both receive from src): illegal under the
  // §3.3 cost model but executable by the meta actor (Fig. 2 semantics),
  // so the runtime accepts it.
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_operator("sink", 1e-3);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.5);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  Topology t = b.build();
  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 2}, ""});
  ActorGraph g = ActorGraph::build(t, d);
  EXPECT_EQ(g.num_actors(), 3u);
  // Two channels into the meta actor (one per logical edge) and two out.
  const ActorSpec& meta = g.actors[static_cast<std::size_t>(g.entry[1])];
  EXPECT_EQ(meta.incoming_channels, 2);
  EXPECT_EQ(meta.downstream.size(), 2u);
}

TEST(ActorGraph, RejectsIllegalFusion) {
  // A group whose contraction would create a cycle (a -> x -> b with a, b
  // fused) is illegal even under the relaxed multi-entry rule.
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("x", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 0.5);
  b.add_edge(1, 3, 0.5);
  b.add_edge(2, 3);
  Topology t = b.build();
  Deployment d;
  d.fusions.push_back(FusionSpec{{1, 3}, ""});
  EXPECT_THROW((void)ActorGraph::build(t, d), Error);
}

TEST(ActorGraph, DiamondChannelsCountPerEdge) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("a", 1e-3);
  b.add_operator("b", 1e-3);
  b.add_operator("sink", 1e-3);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.5);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  ActorGraph g = ActorGraph::build(b.build(), Deployment{});
  EXPECT_EQ(g.actors[static_cast<std::size_t>(g.entry[3])].incoming_channels, 2);
  EXPECT_EQ(g.actors[static_cast<std::size_t>(g.exit[0])].downstream.size(), 2u);
}

}  // namespace
}  // namespace ss::runtime
