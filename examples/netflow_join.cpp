// Network-monitoring scenario exercising the two-input band join (the
// heaviest operator of the paper's testbed) and the multi-source support:
// two independent probe streams are unified under a fictitious source
// (paper §3.1's workaround), band-joined on their timestamps, and the
// match stream is aggregated.
//
// Topology (after the fictitious source is added):
//                __source__
//               /          |
//         probe_a      probe_b      (two measurement vantage points)
//               |          |
//              band_join            (|latency_a - latency_b| <= band)
//                 |
//             win_quantile          (p95 of the latency skew)
//                 |
//               alarms
//
// Build and run:  ./build/examples/netflow_join
#include <atomic>
#include <chrono>
#include <iostream>

#include "core/optimizer.hpp"
#include "ops/join.hpp"
#include "ops/windowed.hpp"
#include "runtime/engine.hpp"

namespace {

using ss::runtime::Collector;
using ss::runtime::OperatorLogic;
using ss::runtime::SourceLogic;
using ss::runtime::Tuple;

/// The unified probe source: emits measurements tagged for probe A or B
/// (f[3] = 0/1); the runtime's probabilistic routing sends each to the
/// right branch per the fictitious source's edge probabilities, but to
/// keep the example deterministic we route explicitly downstream.
class ProbeFeed final : public SourceLogic {
 public:
  ProbeFeed(std::int64_t count, std::uint64_t seed) : count_(count), rng_(seed) {}
  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    out = Tuple{};
    out.id = next_id_++;
    out.key = out.id % 64;                       // flow id
    out.f[0] = 10.0 + 2.0 * rng_.next_double();  // measured latency (ms)
    return true;
  }

 private:
  std::int64_t count_;
  std::int64_t next_id_ = 0;
  ss::Rng rng_;
};

/// Adds per-vantage-point measurement noise.
class VantagePoint final : public OperatorLogic {
 public:
  explicit VantagePoint(double bias, std::uint64_t seed) : bias_(bias), rng_(seed) {}
  void process(const Tuple& item, ss::OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[0] += bias_ + 0.02 * rng_.next_double();
    out.emit(t);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<VantagePoint>(bias_, rng_.next_u64());
  }

 private:
  double bias_;
  mutable ss::Rng rng_;
};

class AlarmSink final : public OperatorLogic {
 public:
  explicit AlarmSink(std::atomic<std::int64_t>* count) : count_(count) {}
  void process(const Tuple& item, ss::OpIndex, Collector& out) override {
    count_->fetch_add(1);
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<AlarmSink>(count_);
  }

 private:
  std::atomic<std::int64_t>* count_;
};

}  // namespace

int main() {
  // Two probe streams; add_fictitious_source unifies them (paper §3.1).
  ss::Topology::Builder builder;
  const ss::OpIndex probe_a = builder.add_operator("probe_a", 0.4e-3);
  const ss::OpIndex probe_b = builder.add_operator("probe_b", 0.5e-3);
  ss::OperatorSpec join_spec;
  join_spec.name = "skew_join";
  join_spec.service_time = 1.2e-3;
  join_spec.state = ss::StateKind::kStateful;
  join_spec.selectivity = ss::Selectivity{1.0, 1.2};  // profiled match rate
  const ss::OpIndex join = builder.add_operator(std::move(join_spec));
  ss::OperatorSpec quant;
  quant.name = "p95_skew";
  quant.impl = "win_quantile";
  quant.service_time = 0.8e-3;
  quant.state = ss::StateKind::kStateful;
  quant.selectivity = ss::Selectivity{10.0, 1.0};
  const ss::OpIndex p95 = builder.add_operator(std::move(quant));
  const ss::OpIndex alarms = builder.add_operator("alarms", 0.05e-3);
  builder.add_edge(probe_a, join);
  builder.add_edge(probe_b, join);
  builder.add_edge(join, p95);
  builder.add_edge(p95, alarms);
  builder.add_fictitious_source(0.25e-3, "probes");
  const ss::Topology topology = builder.build();

  ss::Optimizer tool(topology, "netflow");
  std::cout << "-- static analysis (multi-source unified by a fictitious root) --\n"
            << tool.report() << '\n';

  // Execute with the real operator logics (join sides distinguished by the
  // upstream operator id the runtime passes to process()).
  static constexpr std::int64_t kProbes = 20000;
  std::atomic<std::int64_t> alarm_count{0};
  ss::runtime::AppFactory factory;
  factory.source = [](ss::OpIndex, const ss::OperatorSpec&) {
    return std::make_unique<ProbeFeed>(kProbes, 11);
  };
  factory.logic = [&](ss::OpIndex op, const ss::OperatorSpec& spec)
      -> std::unique_ptr<OperatorLogic> {
    if (op == 0) return std::make_unique<VantagePoint>(0.00, 21);
    if (op == 1) return std::make_unique<VantagePoint>(0.05, 22);
    if (op == 2) return std::make_unique<ss::ops::BandJoin>(128, 0.1);
    if (op == 3) return std::make_unique<ss::ops::WinQuantile>(1000, 10, 0.95);
    if (op == 4) return std::make_unique<AlarmSink>(&alarm_count);
    (void)spec;
    return nullptr;
  };

  ss::runtime::Engine engine(topology, ss::runtime::Deployment{}, factory, {});
  const auto stats = engine.run_until_complete(std::chrono::duration<double>(120.0));
  std::cout << ss::runtime::format_stats(topology, stats);
  std::cout << "join matches: " << stats.ops[join].emitted << " from "
            << stats.ops[join].processed << " probe measurements; " << alarm_count.load()
            << " p95 skew updates reached the alarm stage\n";
  return stats.ops[join].processed > 0 && alarm_count.load() > 0 ? 0 : 1;
}
