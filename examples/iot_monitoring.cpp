// IoT / environmental-monitoring scenario (paper §1 motivates exactly this
// class of applications): a fine-grained analytics tail that is over-
// decomposed, which operator *fusion* cleans up.
//
// Topology:
//   sensors -> clamp -> wma (smoothing window) -> win_max -> topk -> dashboard
//
// The windowed tail operators are heavily under-utilized (the smoothing
// window's slide divides the rate by 10), so SpinStreams proposes fusing
// them; the example shows the candidate ranking, applies the best fusion,
// and verifies on the runtime that throughput is unharmed while three
// actors become one.
//
// Build and run:  ./build/examples/iot_monitoring
#include <chrono>
#include <iostream>

#include "core/optimizer.hpp"
#include "ops/registry.hpp"
#include "runtime/engine.hpp"

int main() {
  ss::Topology::Builder builder;
  ss::OperatorSpec sensors;
  sensors.name = "sensors";
  sensors.service_time = 0.8e-3;  // ~1250 readings/s
  sensors.impl = "source";
  builder.add_operator(std::move(sensors));

  const auto add = [&](const char* name, const char* impl, double service_ms,
                       ss::Selectivity sel = {}) {
    ss::OperatorSpec spec;
    spec.name = name;
    spec.impl = impl;
    spec.service_time = service_ms * 1e-3;
    spec.selectivity = sel;
    spec.state = ss::StateKind::kStateful;  // global windows in this app
    if (std::string(impl) == "clamp") spec.state = ss::StateKind::kStateless;
    return builder.add_operator(std::move(spec));
  };
  const ss::OpIndex clamp = add("clamp", "clamp", 0.1);
  const ss::OpIndex wma = add("smooth", "wma", 0.7, ss::Selectivity{10.0, 1.0});
  const ss::OpIndex wmax = add("peak", "win_max", 0.6);
  const ss::OpIndex topk = add("topk", "topk", 1.2, ss::Selectivity{1.0, 3.0});
  const ss::OpIndex dash = add("dashboard", "sink", 0.05);
  builder.add_edge(0, clamp);
  builder.add_edge(clamp, wma);
  builder.add_edge(wma, wmax);
  builder.add_edge(wmax, topk);
  builder.add_edge(topk, dash);
  const ss::Topology topology = builder.build();

  ss::Optimizer tool(topology, "iot-monitoring");
  std::cout << "-- static analysis --\n" << tool.report() << '\n';

  // Ask the tool for fusion candidates, ranked by utilization (§4.1).
  const auto candidates = tool.fusion_candidates();
  std::cout << "fusion candidates (ranked by mean utilization):\n";
  for (const auto& candidate : candidates) {
    std::cout << "  {";
    for (std::size_t i = 0; i < candidate.spec.members.size(); ++i) {
      std::cout << (i ? ", " : "") << topology.op(candidate.spec.members[i]).name;
    }
    std::cout << "}  mean rho " << candidate.mean_utilization << ", fused service time "
              << candidate.service_time * 1e3 << " ms\n";
  }
  if (candidates.empty()) {
    std::cout << "  (none - nothing is under-utilized)\n";
    return 0;
  }

  const ss::FusionResult fusion = tool.try_fusion(candidates.front().spec);
  std::cout << "\n-- after fusing the best candidate --\n" << tool.report() << '\n';

  // Execute original vs fused on the actor runtime with the real operator
  // implementations resolved from the registry.
  const auto run = [](const ss::Topology& t, const std::vector<ss::FusionSpec>& fusions) {
    ss::runtime::Deployment deployment;
    deployment.fusions = fusions;
    ss::runtime::Engine engine(t, deployment, ss::runtime::synthetic_factory(), {});
    return engine.run_for(std::chrono::duration<double>(2.0)).source_rate;
  };
  const double before = run(topology, {});
  // Equivalent executions: run the *original* topology with the fused
  // members executed by one meta actor (Alg. 4)...
  const double fused_meta = run(topology, {candidates.front().spec});
  std::cout << "measured throughput: original actors " << before << " tuples/s, fused meta actor "
            << fused_meta << " tuples/s\n"
            << "actors saved by fusion: " << candidates.front().spec.members.size() - 1 << '\n'
            << "predicted after fusion: " << fusion.throughput_after << " tuples/s ("
            << (fusion.introduces_bottleneck ? "bottleneck!" : "no bottleneck") << ")\n";
  return 0;
}
