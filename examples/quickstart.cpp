// Quickstart: the SpinStreams workflow end to end on a small pipeline.
//
//   1. describe the topology (profiled service times, routing, state),
//   2. run the steady-state analysis (Alg. 1) and read the report,
//   3. let the tool eliminate the bottleneck via fission (Alg. 2),
//   4. execute both versions on the bundled actor runtime and compare.
//
// Build and run:  ./build/examples/quickstart
#include <chrono>
#include <iostream>

#include "core/bottleneck.hpp"
#include "core/optimizer.hpp"
#include "runtime/engine.hpp"

int main() {
  // 1. A four-stage pipeline: the parser is the bottleneck (2.5 ms per
  //    item against a 1 ms source).
  ss::Topology::Builder builder;
  const ss::OpIndex source = builder.add_operator("source", 1.0e-3);
  const ss::OpIndex parse = builder.add_operator("parse", 2.5e-3);
  const ss::OpIndex score = builder.add_operator("score", 0.8e-3);
  const ss::OpIndex sink = builder.add_operator("sink", 0.1e-3);
  builder.add_edge(source, parse);
  builder.add_edge(parse, score);
  builder.add_edge(score, sink);
  const ss::Topology topology = builder.build();

  // 2. Static analysis: predicted throughput and per-operator utilization.
  ss::Optimizer tool(topology, "quickstart");
  std::cout << "-- imported topology --\n" << tool.report() << '\n';

  // 3. Bottleneck elimination: the tool picks ceil(rho) = 3 replicas.
  const ss::BottleneckResult fission = tool.eliminate_bottlenecks();
  std::cout << "-- after bottleneck elimination --\n" << tool.report() << '\n';

  // 4. Run both versions for two seconds on the actor runtime.
  const auto run = [&](const ss::ReplicationPlan& plan) {
    ss::runtime::Deployment deployment;
    deployment.replication = plan;
    ss::runtime::Engine engine(topology, deployment, ss::runtime::synthetic_factory(), {});
    return engine.run_for(std::chrono::duration<double>(2.0));
  };
  const auto before = run({});
  const auto after = run(fission.plan);
  std::cout << "measured throughput before fission: " << before.source_rate << " tuples/s\n"
            << "measured throughput after fission:  " << after.source_rate << " tuples/s\n"
            << "(predicted: " << ss::steady_state(topology).throughput() << " -> "
            << fission.analysis.throughput() << ")\n";
  return 0;
}
