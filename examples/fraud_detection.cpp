// Fraud-detection scenario: the kind of workload the paper's introduction
// motivates (real-time analytics extracting insights from raw streams).
//
// Topology:
//   transactions -> enrich (merchant table) -> sanitize (clamp bad values)
//                -> keyed_average (per-card running mean, partitioned state)
//                -> alert / archive (content-based routing via emit_to)
//
// The per-card average is the bottleneck; the tool parallelizes it by
// splitting the card-id key domain (Alg. 2, KeyPartitioning), and the
// example verifies the alert/archive *semantics* survive fission: every
// suspicious transaction is alerted exactly once.
//
// Build and run:  ./build/examples/fraud_detection
#include <atomic>
#include <chrono>
#include <iostream>

#include "core/bottleneck.hpp"
#include "core/optimizer.hpp"
#include "ops/keyed.hpp"
#include "ops/stateless.hpp"
#include "runtime/engine.hpp"

namespace {

using ss::runtime::Collector;
using ss::runtime::OperatorLogic;
using ss::runtime::SourceLogic;
using ss::runtime::Tuple;

/// Transaction stream: f[0] = amount, key = card id.  Cards draw amounts
/// around a per-card baseline; 2% of transactions spike 10x (the "fraud").
class TransactionSource final : public SourceLogic {
 public:
  TransactionSource(std::int64_t count, std::uint64_t seed) : count_(count), rng_(seed) {}
  bool next(Tuple& out) override {
    if (next_id_ >= count_) return false;
    out = Tuple{};
    out.id = next_id_++;
    out.key = rng_.rand_int(0, 499);  // 500 cards
    const double baseline = 10.0 + static_cast<double>(out.key % 37);
    out.f[0] = baseline * (rng_.bernoulli(0.02) ? 10.0 : rng_.rand_double(0.8, 1.2));
    return true;
  }

 private:
  std::int64_t count_;
  std::int64_t next_id_ = 0;
  ss::Rng rng_;
};

/// Flags transactions whose amount exceeds 4x the running per-card mean:
/// suspicious ones go to the alert branch, the rest to the archive.
class FraudScorer final : public OperatorLogic {
 public:
  FraudScorer(ss::OpIndex alert, ss::OpIndex archive) : alert_(alert), archive_(archive) {}
  void process(const Tuple& item, ss::OpIndex, Collector& out) override {
    State& s = state_[item.key];
    const double mean = s.count > 0 ? s.sum / static_cast<double>(s.count) : item.f[0];
    s.sum += item.f[0];
    ++s.count;
    Tuple t = item;
    t.f[1] = mean;
    if (s.count > 3 && item.f[0] > 4.0 * mean) {
      out.emit_to(alert_, t);
    } else {
      out.emit_to(archive_, t);
    }
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<FraudScorer>(alert_, archive_);
  }

 private:
  struct State {
    double sum = 0.0;
    std::int64_t count = 0;
  };
  ss::OpIndex alert_;
  ss::OpIndex archive_;
  std::unordered_map<std::int64_t, State> state_;
};

/// Counts what reaches it.
class CountingSink final : public OperatorLogic {
 public:
  explicit CountingSink(std::atomic<std::int64_t>* counter) : counter_(counter) {}
  void process(const Tuple& item, ss::OpIndex, Collector& out) override {
    counter_->fetch_add(1);
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<CountingSink>(counter_);
  }

 private:
  std::atomic<std::int64_t>* counter_;
};

}  // namespace

int main() {
  // --- topology description with profiled service times ----------------
  ss::Topology::Builder builder;
  const ss::OpIndex source = builder.add_operator("transactions", 0.5e-3);
  const ss::OpIndex enrich = builder.add_operator("enrich", 0.3e-3);
  const ss::OpIndex sanitize = builder.add_operator("sanitize", 0.2e-3);
  ss::OperatorSpec scorer_spec;
  scorer_spec.name = "fraud_scorer";
  scorer_spec.service_time = 1.6e-3;  // the bottleneck (profiled)
  scorer_spec.state = ss::StateKind::kPartitionedStateful;
  scorer_spec.keys = ss::KeyDistribution::uniform(500);
  const ss::OpIndex scorer = builder.add_operator(std::move(scorer_spec));
  const ss::OpIndex alert = builder.add_operator("alert", 0.1e-3);
  const ss::OpIndex archive = builder.add_operator("archive", 0.1e-3);
  builder.add_edge(source, enrich);
  builder.add_edge(enrich, sanitize);
  builder.add_edge(sanitize, scorer);
  builder.add_edge(scorer, alert, 0.03);    // profiled branch frequencies
  builder.add_edge(scorer, archive, 0.97);
  const ss::Topology topology = builder.build();

  ss::Optimizer tool(topology, "fraud-detection");
  std::cout << "-- static analysis --\n" << tool.report() << '\n';
  const ss::BottleneckResult fission = tool.eliminate_bottlenecks();
  std::cout << "-- after fission of the scorer (" << fission.plan.replicas_of(scorer)
            << " replicas over the card-id key domain) --\n"
            << tool.report() << '\n';

  // --- execute with the real operator logics ---------------------------
  static constexpr std::int64_t kTransactions = 30000;
  std::atomic<std::int64_t> alerts{0};
  std::atomic<std::int64_t> archived{0};

  ss::runtime::AppFactory factory;
  factory.source = [](ss::OpIndex, const ss::OperatorSpec&) {
    return std::make_unique<TransactionSource>(kTransactions, 2024);
  };
  factory.logic = [&](ss::OpIndex op, const ss::OperatorSpec& spec)
      -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<ss::ops::Enrich>();
    if (op == 2) return std::make_unique<ss::ops::Clamp>(0.0, 1e6);
    if (op == 3) return std::make_unique<FraudScorer>(4, 5);
    if (op == 4) return std::make_unique<CountingSink>(&alerts);
    if (op == 5) return std::make_unique<CountingSink>(&archived);
    (void)spec;
    return std::make_unique<ss::ops::Projection>();
  };

  ss::runtime::Deployment deployment;
  deployment.replication = fission.plan;
  deployment.partitions = fission.partitions;
  ss::runtime::EngineConfig config;
  config.assign_keys_at_emitter = false;  // route by the REAL card id
  ss::runtime::Engine engine(topology, deployment, factory, config);
  const auto stats = engine.run_until_complete(std::chrono::duration<double>(120.0));

  std::cout << "processed " << stats.ops[scorer].processed << " transactions; " << alerts.load()
            << " alerts, " << archived.load() << " archived\n";
  const bool consistent = alerts.load() + archived.load() == kTransactions;
  std::cout << (consistent ? "alert/archive accounting is exact under fission\n"
                           : "ERROR: transactions were lost or duplicated!\n");
  return consistent ? 0 : 1;
}
