// The full SpinStreams tool workflow of paper §4 (Fig. 5), headless:
//
//   XML description -> validation -> steady-state analysis -> optimizations
//   (fission + fusion) -> code generation for the runtime.
//
// Run with a path to a topology XML to optimize your own application:
//   ./build/examples/xml_workflow my_app.xml
// Without arguments it uses a built-in description (a log-analytics
// pipeline) and prints the generated C++ to stdout; pass --emit=FILE to
// write it to a file (examples/generated_pipeline.cpp in this repository
// was produced exactly that way).
#include <fstream>
#include <iostream>

#include "core/bottleneck.hpp"
#include "core/codegen.hpp"
#include "core/optimizer.hpp"
#include "core/validate.hpp"
#include "harness/args.hpp"
#include "xmlio/topology_xml.hpp"

namespace {

// A log-analytics application: parse -> enrich -> route to a fast counting
// branch and a slow quantile branch; the quantile aggregation bottlenecks.
constexpr const char* kBuiltinXml = R"(<?xml version="1.0" encoding="UTF-8"?>
<topology name="log-analytics">
  <operator name="ingest"   impl="source"        service-time="0.4" time-unit="ms"/>
  <operator name="parse"    impl="map_affine"    service-time="0.3" time-unit="ms"/>
  <operator name="enrich"   impl="enrich"        service-time="0.5" time-unit="ms"/>
  <operator name="counter"  impl="keyed_counter" service-time="0.3" time-unit="ms"
            state="partitioned">
    <keys distribution="zipf" count="400" alpha="0.4"/>
  </operator>
  <operator name="latency"  impl="win_quantile"  service-time="2.2" time-unit="ms"
            state="partitioned" input-selectivity="10">
    <keys distribution="uniform" count="600"/>
  </operator>
  <operator name="store"    impl="sink"          service-time="0.05" time-unit="ms"/>
  <operator name="alerts"   impl="sink"          service-time="0.05" time-unit="ms"/>
  <edge from="ingest"  to="parse"/>
  <edge from="parse"   to="enrich"/>
  <edge from="enrich"  to="counter" probability="0.6"/>
  <edge from="enrich"  to="latency" probability="0.4"/>
  <edge from="counter" to="store"/>
  <edge from="latency" to="alerts"/>
</topology>
)";

}  // namespace

int main(int argc, char** argv) {
  const ss::harness::Args args(argc, argv);

  // 1. Import (file argument or the built-in description).
  ss::Topology topology = args.positional().empty()
                              ? ss::xml::load_topology(kBuiltinXml)
                              : ss::xml::load_topology_file(args.positional().front());

  // 2. Validate and report (load_topology already enforces the paper's
  //    constraints; validate_draft shows the warning channel too).
  const ss::ValidationReport report = ss::validate_draft(topology.operators(), topology.edges());
  if (!report.issues.empty()) std::cout << report.to_string() << '\n';

  // 3. Analyses.
  ss::Optimizer tool(topology, "xml-import");
  std::cout << "-- steady-state analysis (Alg. 1) --\n" << tool.report() << '\n';
  const ss::BottleneckResult fission = tool.eliminate_bottlenecks();
  std::cout << "-- bottleneck elimination (Alg. 2) --\n" << tool.report() << '\n';

  // 4. Code generation for the chosen version.
  ss::CodegenOptions codegen;
  codegen.app_name = "log_analytics_optimized";
  codegen.run_seconds = 5.0;
  const std::string source =
      ss::generate_runtime_source(topology, fission.plan, {}, codegen);

  const std::string emit = args.get("emit", "");
  if (emit.empty()) {
    std::cout << "-- generated program --\n" << source;
  } else {
    std::ofstream out(emit);
    out << source;
    std::cout << "generated program written to " << emit << '\n';
  }

  // Round-trip bonus: write the optimized description back out as XML.
  const std::string xml_out = args.get("save-xml", "");
  if (!xml_out.empty()) {
    ss::xml::save_topology_file(topology, xml_out, "log-analytics");
    std::cout << "topology description written to " << xml_out << '\n';
  }
  return 0;
}
